// Package trace turns workload instruction streams into per-pipe-stage
// sensitized-delay traces and empirical error-probability functions — the
// cross-layer step of the methodology (Fig 5.8): architectural simulation
// produces cycle-by-cycle stage input vectors, circuit-level timing
// analysis turns them into per-instruction path delays, and the fraction of
// instructions whose delay exceeds r * t_nom is the error probability at
// timing-speculation ratio r.
package trace

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"synts/internal/core"
	"synts/internal/cpu"
	"synts/internal/isa"
	"synts/internal/netlist"
	"synts/internal/obs"
	"synts/internal/pool"
	"synts/internal/simprof"
	"synts/internal/timing"
	"synts/internal/workload"
)

// Stage identifies one of the three analysed pipe stages.
type Stage int

// The analysed pipe stages (§5.3).
const (
	Decode Stage = iota
	SimpleALU
	ComplexALU
)

var stageNames = [...]string{"Decode", "SimpleALU", "ComplexALU"}

// String returns the stage name as the thesis spells it.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return fmt.Sprintf("Stage(%d)", int(s))
}

// Stages lists all three analysed stages.
func Stages() []Stage { return []Stage{Decode, SimpleALU, ComplexALU} }

// StageCircuit couples a stage's netlist with its bus layout and STA
// critical path, and knows how to translate an instruction into the
// stage's input vector.
type StageCircuit struct {
	Stage   Stage
	Netlist *netlist.Netlist
	TCrit   float64 // STA critical path, ps at nominal voltage

	in []bool // scratch input vector
	// lastTouched holds, per instruction of the most recent DelayTrace
	// call, the number of gates the timing engine touched (nil unless the
	// simprof profiler was on). Touched counts are a property of the
	// vector stream, not the engine, so attribution is engine-independent.
	lastTouched []int64
	pc          uint32 // synthetic program counter (Decode stage)
	opBus       netlist.Bus
	aBus        netlist.Bus
	bBus        netlist.Bus
	cBus        netlist.Bus
	instBus     netlist.Bus
	pcBus       netlist.Bus
}

var (
	circuitCacheMu sync.Mutex
	circuitCache   = map[Stage]*StageCircuit{}
)

// NewStageCircuit builds (or returns a cached copy of) the netlist for a
// stage. The returned value contains per-call scratch state and must not be
// shared across goroutines; call NewStageCircuit in each goroutine.
func NewStageCircuit(s Stage) *StageCircuit {
	circuitCacheMu.Lock()
	base, ok := circuitCache[s]
	if !ok {
		base = buildStage(s)
		circuitCache[s] = base
	}
	circuitCacheMu.Unlock()
	// Shallow copy sharing the immutable netlist; private scratch.
	sc := *base
	sc.in = make([]bool, len(sc.Netlist.Inputs))
	return &sc
}

func buildStage(s Stage) *StageCircuit {
	sc := &StageCircuit{Stage: s}
	switch s {
	case Decode:
		sc.Netlist = netlist.NewDecode()
		sc.instBus = sc.Netlist.InputBus("instr")
		sc.pcBus = sc.Netlist.InputBus("pc")
	case SimpleALU:
		sc.Netlist = netlist.NewSimpleALU(32)
		sc.opBus = sc.Netlist.InputBus("op")
		sc.aBus = sc.Netlist.InputBus("a")
		sc.bBus = sc.Netlist.InputBus("b")
	case ComplexALU:
		sc.Netlist = netlist.NewComplexALU(32)
		sc.opBus = sc.Netlist.InputBus("op")
		sc.aBus = sc.Netlist.InputBus("a")
		sc.bBus = sc.Netlist.InputBus("b")
		sc.cBus = sc.Netlist.InputBus("c")
	default:
		panic("trace: unknown stage " + s.String())
	}
	sc.TCrit = timing.NewAnalyzer(sc.Netlist).CriticalPath()
	return sc
}

// aluOpFor maps an ISA op to the SimpleALU op-select encoding, mirroring
// the Decode stage's control plane.
func aluOpFor(op isa.Op) uint64 {
	switch op {
	case isa.ADD, isa.ADDI, isa.LD, isa.ST:
		return netlist.ALUAdd
	case isa.SUB, isa.BEQ, isa.BNE:
		return netlist.ALUSub
	case isa.AND:
		return netlist.ALUAnd
	case isa.OR:
		return netlist.ALUOr
	case isa.XOR:
		return netlist.ALUXor
	case isa.SLT:
		return netlist.ALUSlt
	case isa.SHL:
		return netlist.ALUShl
	case isa.SHR:
		return netlist.ALUShr
	default:
		panic("trace: no SimpleALU encoding for " + op.String())
	}
}

// Drives reports whether an instruction produces new input activity at this
// stage. Instructions that do not drive a stage leave its operand latches
// unchanged (operand isolation) and therefore cannot cause a timing error
// there.
func (sc *StageCircuit) Drives(in isa.Inst) bool {
	switch sc.Stage {
	case Decode:
		return true // every instruction is decoded
	case SimpleALU:
		switch in.Op.Class() {
		case isa.ClassSimple, isa.ClassMem, isa.ClassBranch:
			return true
		}
		return false
	case ComplexALU:
		return in.Op.Class() == isa.ClassComplex
	}
	return false
}

// Vector fills the stage input vector for an instruction. It must only be
// called when Drives(in) is true.
func (sc *StageCircuit) Vector(in isa.Inst) []bool {
	n := sc.Netlist
	switch sc.Stage {
	case Decode:
		n.SetBusUint(sc.in, sc.instBus, uint64(isa.Encode(in)))
		sc.stepPC(in)
		n.SetBusUint(sc.in, sc.pcBus, uint64(0x0040_0000+sc.pc))
	case SimpleALU:
		n.SetBusUint(sc.in, sc.opBus, aluOpFor(in.Op))
		a, b := in.A, in.B
		if in.Op.Class() == isa.ClassMem {
			// Address generation: base + sign-extended displacement.
			b = uint32(int32(int16(in.Imm)))
			a = in.Addr - b
		}
		n.SetBusUint(sc.in, sc.aBus, uint64(a))
		n.SetBusUint(sc.in, sc.bBus, uint64(b))
	case ComplexALU:
		op := uint64(0)
		if in.Op == isa.MAC {
			op = 1
		}
		n.SetBusUint(sc.in, sc.opBus, op)
		n.SetBusUint(sc.in, sc.aBus, uint64(in.A))
		n.SetBusUint(sc.in, sc.bBus, uint64(in.B))
		n.SetBusUint(sc.in, sc.cBus, uint64(in.C))
	}
	return sc.in
}

// stepPC advances the synthetic fetch PC over one instruction. Fetch-path
// model: the PC advances one word per instruction and jumps on taken
// branches (recorded in Result by the workload runtime), so the Decode
// target adder sees both incremental carries and the discontinuities of a
// thread's real control flow.
func (sc *StageCircuit) stepPC(in isa.Inst) {
	if in.Op.Class() == isa.ClassBranch && in.Result == 1 {
		sc.pc += uint32(int32(int16(in.Imm))) * 4
	} else {
		sc.pc += 4
	}
}

// SeekPC fast-forwards the fetch PC over earlier barrier intervals without
// simulating them. A fresh circuit positioned with SeekPC produces exactly
// the delay trace a circuit that walked the earlier intervals would: the PC
// is the only StageCircuit state that survives interval boundaries
// (DelayTrace re-primes its analyzer per interval). This is what makes
// (thread, interval) a legal parallel work unit.
func (sc *StageCircuit) SeekPC(earlier [][]isa.Inst) {
	if sc.Stage != Decode {
		return // only the Decode vector depends on the PC
	}
	for _, iv := range earlier {
		for _, in := range iv {
			sc.stepPC(in)
		}
	}
}

// DelayTrace computes the sensitized delay of every instruction in the
// window. Instructions that do not drive the stage hold its inputs and get
// delay 0. The engine state persists across the whole window, so
// back-to-back instructions see realistic previous-vector transitions.
//
// The engine is selected process-wide (SetEngine / cmd/synts -engine):
// the default event engine and the levelized reference produce bit-equal
// delays, so the choice never changes any downstream artefact. The
// trace.gate_evals counter records *touched* gates (gates with at least
// one changed input, plus one full pass for the priming vector) — an
// engine-independent measure of the work the vector stream demands, which
// is what makes the event engine's win attributable in BENCH_synts.json.
func (sc *StageCircuit) DelayTrace(iv []isa.Inst) []float64 {
	perInst := simprof.Enabled() // issue-phase attribution wants per-op touched counts
	var delays []float64
	var touched int64
	if CurrentEngine() == EngineLevelized {
		delays, touched = sc.delayTraceLevelized(iv, perInst)
	} else {
		delays, touched = sc.delayTraceEvent(iv, perInst)
	}
	if obs.Enabled() {
		obs.C("trace.gate_evals").Add(touched)
		obs.C("trace.instructions").Add(int64(len(iv)))
	}
	return delays
}

// DelayTraceLevelized runs the window through the levelized reference
// engine regardless of the process-wide selection (benchmarks and
// equivalence tests).
func (sc *StageCircuit) DelayTraceLevelized(iv []isa.Inst) []float64 {
	d, _ := sc.delayTraceLevelized(iv, false)
	return d
}

// DelayTraceEvent runs the window through the bit-parallel + event-driven
// engine regardless of the process-wide selection.
func (sc *StageCircuit) DelayTraceEvent(iv []isa.Inst) []float64 {
	d, _ := sc.delayTraceEvent(iv, false)
	return d
}

// delayTraceLevelized is the reference path: one full levelized pass per
// driving vector. Returns the delays and the total touched-gate count;
// with perInst it also records per-instruction touched counts in
// sc.lastTouched (nil otherwise).
func (sc *StageCircuit) delayTraceLevelized(iv []isa.Inst, perInst bool) ([]float64, int64) {
	an := timing.NewAnalyzer(sc.Netlist)
	delays := make([]float64, len(iv))
	var touched []int64
	if perInst {
		touched = make([]int64, len(iv))
	}
	primed := false
	var prev int64
	for i, in := range iv {
		if !sc.Drives(in) {
			continue // delay 0: inputs held
		}
		vec := sc.Vector(in)
		if !primed {
			an.Reset(vec) // first driving vector establishes state
			primed = true
		} else {
			delays[i] = an.Step(vec)
		}
		if perInst {
			touched[i] = an.Touched() - prev
			prev = an.Touched()
		}
	}
	sc.lastTouched = touched
	return delays, an.Touched()
}

// delayTraceEvent is the fast path: driving vectors are packed 64 at a
// time into uint64 lanes (bit j of inWords[i] = input i of the block's
// j-th vector), one bit-parallel pass settles each block, and each
// vector's delay comes from an event-driven walk of its changed-net
// fanout cone. Delays are bit-identical to delayTraceLevelized.
func (sc *StageCircuit) delayTraceEvent(iv []isa.Inst, perInst bool) ([]float64, int64) {
	n := sc.Netlist
	ba := timing.NewBlockAnalyzer(n)
	delays := make([]float64, len(iv))
	var touched []int64
	var blockTouched []int64
	if perInst {
		touched = make([]int64, len(iv))
		blockTouched = make([]int64, 64)
	}
	inWords := make([]uint64, len(n.Inputs))
	blockDelays := make([]float64, 64)
	var lanePos [64]int // lane -> instruction index
	lanes := 0
	flush := func() {
		if lanes == 0 {
			return
		}
		ba.StepBlock(inWords, lanes, blockDelays, blockTouched)
		for j := 0; j < lanes; j++ {
			delays[lanePos[j]] = blockDelays[j]
			if perInst {
				touched[lanePos[j]] = blockTouched[j]
			}
		}
		for i := range inWords {
			inWords[i] = 0
		}
		lanes = 0
	}
	primed := false
	for i, in := range iv {
		if !sc.Drives(in) {
			continue // delay 0: inputs held
		}
		vec := sc.Vector(in)
		if !primed {
			ba.Reset(vec) // first driving vector establishes state
			primed = true
			if perInst {
				touched[i] = int64(len(n.Gates))
			}
			continue
		}
		for b, v := range vec {
			if v {
				inWords[b] |= 1 << uint(lanes)
			}
		}
		lanePos[lanes] = i
		lanes++
		if lanes == 64 {
			flush()
		}
	}
	flush()
	sc.lastTouched = touched
	return delays, ba.Touched()
}

// Profile is the per-thread, per-barrier-interval characterisation that
// feeds the SynTS solvers: instruction count, baseline CPI and the
// empirical error-probability function.
type Profile struct {
	Thread   int
	Interval int
	N        int
	CPIBase  float64
	TCrit    float64
	// Delays holds each instruction's sensitized delay in program order —
	// what a Razor pipeline replay (or the online sampling phase) consumes.
	Delays []float64
	// Ops holds each instruction's opcode, aligned with Delays, so replay
	// sites can attribute errors and cycles to the opcode that caused them
	// (the simprof profiler). Always populated, independent of whether
	// profiling is enabled, so profiles compare DeepEqual either way.
	Ops []isa.Op
	// SortedDelays is the same data ascending, for O(log n) Err lookups.
	SortedDelays []float64
}

// Err returns the empirical error probability at TSR r: the fraction of
// the interval's instructions whose sensitized delay exceeds r * TCrit.
// It is non-increasing in r and exactly 0 at r = 1.
func (p *Profile) Err(r float64) float64 {
	if p.N == 0 || len(p.SortedDelays) == 0 {
		return 0
	}
	limit := r * p.TCrit
	// Count delays strictly greater than limit.
	idx := sort.SearchFloat64s(p.SortedDelays, limit)
	for idx < len(p.SortedDelays) && p.SortedDelays[idx] <= limit {
		idx++
	}
	return float64(len(p.SortedDelays)-idx) / float64(p.N)
}

// CoreThread adapts the profile to the solver's Thread type.
func (p *Profile) CoreThread() core.Thread {
	return core.Thread{N: float64(p.N), CPIBase: p.CPIBase, Err: p.Err}
}

// MaxDelay returns the largest sensitized delay observed (0 if none).
func (p *Profile) MaxDelay() float64 {
	if len(p.SortedDelays) == 0 {
		return 0
	}
	return p.SortedDelays[len(p.SortedDelays)-1]
}

// BuildProfiles characterises every thread and barrier interval of a
// workload for one stage. The work fans out over a bounded worker pool
// (GOMAXPROCS workers) at (thread, interval) granularity: each interval's
// delay trace runs as an independent task on a fresh StageCircuit
// fast-forwarded to the interval's starting fetch PC, while each thread's
// CPI measurement stays one in-order task so its private cache (one core
// per thread) remains warm across intervals. Results are assembled by
// index, so the output is byte-identical to BuildProfilesSerial regardless
// of scheduling. The result is indexed [thread][interval].
func BuildProfiles(streams []*workload.Stream, stage Stage, cacheCfg cpu.CacheConfig) ([][]*Profile, error) {
	return BuildProfilesWorkersCtx(context.Background(), streams, stage, cacheCfg, 0)
}

// BuildProfilesCtx is BuildProfiles with a cancellation context: intervals
// not yet submitted when ctx is cancelled are skipped and ctx's error is
// returned.
func BuildProfilesCtx(ctx context.Context, streams []*workload.Stream, stage Stage, cacheCfg cpu.CacheConfig) ([][]*Profile, error) {
	return BuildProfilesWorkersCtx(ctx, streams, stage, cacheCfg, 0)
}

// BuildProfilesWorkers is BuildProfiles with an explicit worker-pool size;
// workers <= 0 means GOMAXPROCS.
func BuildProfilesWorkers(streams []*workload.Stream, stage Stage, cacheCfg cpu.CacheConfig, workers int) ([][]*Profile, error) {
	return BuildProfilesWorkersCtx(context.Background(), streams, stage, cacheCfg, workers)
}

// BuildProfilesWorkersCtx is the fully-parameterised profile builder:
// explicit worker count plus a cancellation context.
func BuildProfilesWorkersCtx(ctx context.Context, streams []*workload.Stream, stage Stage, cacheCfg cpu.CacheConfig, workers int) ([][]*Profile, error) {
	return BuildProfilesScopedCtx(ctx, "", streams, stage, cacheCfg, workers)
}

// BuildProfilesScopedCtx additionally attributes the build's simulated
// work to the simprof profiler under the given kernel name: per-opcode
// gate-eval cycles at this stage (phase "issue") and per-opcode cache
// stall cycles (phase "mem"). With kernel == "" or the profiler
// disabled, it is exactly BuildProfilesWorkersCtx — attribution never
// changes the returned profiles (TestProfilesUnchangedBySimprof).
func BuildProfilesScopedCtx(ctx context.Context, kernel string, streams []*workload.Stream, stage Stage, cacheCfg cpu.CacheConfig, workers int) ([][]*Profile, error) {
	if len(streams) == 0 {
		return nil, fmt.Errorf("trace: no streams")
	}
	defer obs.StartSpan("trace.build_profiles:" + stage.String()).End()
	out := make([][]*Profile, len(streams))
	cpis := make([][]float64, len(streams))
	// Span IDs for the whole (thread, interval) grid are reserved up front
	// so each interval-build span can record a happens-before edge to the
	// same thread's previous interval — the program-order dependence SeekPC
	// breaks for scheduling purposes, preserved for the sched analyzer's
	// critical-path reconstruction. Nil (and free) while obs is off.
	var ivSpanIDs [][]int64
	if obs.Enabled() {
		ivSpanIDs = make([][]int64, len(streams))
	}
	for t, s := range streams {
		out[t] = make([]*Profile, len(s.Intervals))
		cpis[t] = make([]float64, len(s.Intervals))
		if ivSpanIDs != nil {
			ivSpanIDs[t] = make([]int64, len(s.Intervals))
			for ii := range s.Intervals {
				ivSpanIDs[t][ii] = obs.ReserveSpanID()
			}
		}
	}
	g := pool.New(workers)
	for t, s := range streams {
		g.GoCtx(ctx, func() error {
			sp := obs.StartSpan("trace.cpi_measure:" + stage.String())
			defer sp.End()
			cache, err := cpu.NewCache(cacheCfg)
			if err != nil {
				return err
			}
			for ii, iv := range s.Intervals {
				res := cpu.MeasureCPIScoped(kernel, t, ii, stage.String(), iv, cache)
				cpis[t][ii] = res.CPI
				recordCacheCounters(res)
			}
			return nil
		})
		for ii := range s.Intervals {
			g.GoCtx(ctx, func() error {
				var sid, dep int64
				if ivSpanIDs != nil {
					sid = ivSpanIDs[t][ii]
					if ii > 0 {
						dep = ivSpanIDs[t][ii-1]
					}
				}
				bsp := obs.StartSpanID("trace.interval_build:"+stage.String(), sid)
				bsp.DependsOn(dep)
				defer bsp.End()
				sc := NewStageCircuit(stage)
				ssp := bsp.Child("trace.seek_pc")
				sc.SeekPC(s.Intervals[:ii])
				ssp.End()
				iv := s.Intervals[ii]
				dsp := bsp.Child("trace.delay_trace")
				delays := sc.DelayTrace(iv)
				dsp.End()
				if kernel != "" && simprof.Enabled() {
					recordIssueAttr(kernel, t, ii, sc, iv)
				}
				sorted := append([]float64(nil), delays...)
				sort.Float64s(sorted)
				out[t][ii] = &Profile{
					Thread:       t,
					Interval:     ii,
					N:            len(iv),
					TCrit:        sc.TCrit,
					Delays:       delays,
					Ops:          opsOf(iv),
					SortedDelays: sorted,
				}
				return nil
			})
		}
	}
	if err := g.Wait(); err != nil {
		return nil, err
	}
	for t := range out {
		for ii := range out[t] {
			out[t][ii].CPIBase = cpis[t][ii]
		}
	}
	return out, nil
}

// opsOf extracts the opcode stream for Profile.Ops.
func opsOf(iv []isa.Inst) []isa.Op {
	ops := make([]isa.Op, len(iv))
	for i, in := range iv {
		ops[i] = in.Op
	}
	return ops
}

// recordIssueAttr attributes one interval's delay-trace work to simprof:
// each instruction that drives the stage costs one issue cycle, and its
// energy is the touched-gate count its vector demanded (the same
// accounting as the trace.gate_evals obs counter, but keyed per opcode).
// Touched counts come from the DelayTrace call that just ran
// (sc.lastTouched) and are engine-independent, so simprof artefacts stay
// byte-identical whichever engine produced them.
func recordIssueAttr(kernel string, thread, interval int, sc *StageCircuit, iv []isa.Inst) {
	var counts [isa.NumOps]int64
	var work [isa.NumOps]int64
	touched := sc.lastTouched
	allGates := int64(len(sc.Netlist.Gates))
	for i, in := range iv {
		if !sc.Drives(in) {
			continue
		}
		counts[in.Op]++
		if touched != nil {
			work[in.Op] += touched[i]
		} else {
			work[in.Op] += allGates
		}
	}
	stage := sc.Stage.String()
	for op, n := range counts {
		if n == 0 {
			continue
		}
		simprof.Record(
			simprof.Key{Kernel: kernel, Core: thread, Interval: interval, Phase: simprof.PhaseIssue, Op: isa.Op(op).String(), Stage: stage},
			simprof.Values{Cycles: float64(n), Energy: float64(work[op]) * simprof.EnergyPerGateEvalPJ, Instrs: n},
		)
	}
}

// BuildProfilesSerial is the single-goroutine reference implementation:
// per thread, one circuit and one cache walk the intervals in order. The
// parallel path must reproduce it byte for byte (see the determinism tests
// and the -j documentation in cmd/synts).
func BuildProfilesSerial(streams []*workload.Stream, stage Stage, cacheCfg cpu.CacheConfig) ([][]*Profile, error) {
	if len(streams) == 0 {
		return nil, fmt.Errorf("trace: no streams")
	}
	defer obs.StartSpan("trace.build_profiles:" + stage.String()).End()
	out := make([][]*Profile, len(streams))
	for t, s := range streams {
		sc := NewStageCircuit(stage)
		cache, err := cpu.NewCache(cacheCfg)
		if err != nil {
			return nil, err
		}
		out[t] = make([]*Profile, len(s.Intervals))
		for ii, iv := range s.Intervals {
			delays := sc.DelayTrace(iv)
			sorted := append([]float64(nil), delays...)
			sort.Float64s(sorted)
			res := cpu.MeasureCPI(iv, cache)
			recordCacheCounters(res)
			out[t][ii] = &Profile{
				Thread:       t,
				Interval:     ii,
				N:            len(iv),
				CPIBase:      res.CPI,
				TCrit:        sc.TCrit,
				Delays:       delays,
				Ops:          opsOf(iv),
				SortedDelays: sorted,
			}
		}
	}
	return out, nil
}

// recordCacheCounters surfaces one CPI measurement's cache outcome to the
// obs layer, reusing the counts MeasureCPI already collected so no second
// simulation pass is needed.
func recordCacheCounters(res cpu.CPIResult) {
	if !obs.Enabled() {
		return
	}
	obs.C("cpu.cache.accesses").Add(int64(res.Accesses))
	obs.C("cpu.cache.hits").Add(int64(res.Hits))
	obs.C("cpu.cache.misses").Add(int64(res.Misses))
}

// IntervalThreads transposes profiles to [interval][thread] and adapts them
// for the solvers, which work one barrier interval at a time (Eq. 4.2).
func IntervalThreads(profiles [][]*Profile) [][]core.Thread {
	if len(profiles) == 0 {
		return nil
	}
	nIv := len(profiles[0])
	out := make([][]core.Thread, nIv)
	for ii := 0; ii < nIv; ii++ {
		out[ii] = make([]core.Thread, len(profiles))
		for t := range profiles {
			out[ii][t] = profiles[t][ii].CoreThread()
		}
	}
	return out
}
