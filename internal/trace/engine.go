package trace

import (
	"fmt"
	"sync/atomic"
)

// Engine selects which timing engine DelayTrace runs. Both engines compute
// the identical levelized transition-arrival model — delays are bit-equal
// float64s, so every downstream artefact (stdout tables, the events ledger,
// simprof profiles) is byte-identical whichever engine ran. CI enforces
// this equivalence on every push.
type Engine int32

const (
	// EngineEvent is the default: the bit-parallel + event-driven engine
	// (timing.BlockAnalyzer). Vectors are evaluated 64 at a time in uint64
	// lanes and each vector's arrival walk visits only the fanout cone of
	// its changed nets.
	EngineEvent Engine = iota
	// EngineLevelized is the golden reference: one full levelized pass
	// over every gate per vector (timing.Analyzer). Kept as the escape
	// hatch (-engine=levelized) and as the oracle the equivalence tests
	// and the differential fuzzer compare against.
	EngineLevelized
)

// String returns the engine name as the -engine flag spells it.
func (e Engine) String() string {
	switch e {
	case EngineEvent:
		return "event"
	case EngineLevelized:
		return "levelized"
	}
	return fmt.Sprintf("Engine(%d)", int32(e))
}

// ParseEngine parses a -engine flag value.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "event":
		return EngineEvent, nil
	case "levelized":
		return EngineLevelized, nil
	}
	return 0, fmt.Errorf("unknown engine %q (want levelized or event)", s)
}

// engine is the process-wide engine selection; atomic so concurrent
// profile builds read a consistent value while tests switch it.
var engine atomic.Int32 // zero value == EngineEvent

// SetEngine selects the engine DelayTrace uses process-wide.
func SetEngine(e Engine) { engine.Store(int32(e)) }

// CurrentEngine returns the engine DelayTrace will use.
func CurrentEngine() Engine { return Engine(engine.Load()) }
