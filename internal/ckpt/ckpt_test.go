package ckpt

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"synts/internal/faults"
)

func testKey() Key { return Key{Size: 1, Seed: 2016, Threads: 4, Intervals: 3} }

func TestSaveLoadRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir(), testKey())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Load("fig6.11"); ok {
		t.Fatal("empty store must not load")
	}
	out := []byte("Fig 6.11: rendered bytes\nwith newlines\n")
	if err := s.Save("fig6.11", out); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Load("fig6.11")
	if !ok {
		t.Fatal("saved checkpoint must load")
	}
	if string(got) != string(out) {
		t.Fatalf("round trip changed bytes: %q != %q", got, out)
	}
}

// A checkpoint from a different workload configuration must be ignored,
// not replayed: its bytes belong to another run's golden output.
func TestLoadRejectsMismatchedKey(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, testKey())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save("table5.1", []byte("x")); err != nil {
		t.Fatal(err)
	}
	other := testKey()
	other.Seed++
	s2, err := Open(dir, other)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Load("table5.1"); ok {
		t.Error("checkpoint with a different key must not load")
	}
	if _, ok := s.Load("table5.1"); !ok {
		t.Error("original key must still load")
	}
}

func TestLoadRejectsCorruptFile(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, testKey())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "fig1.2.ckpt.json"), []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Load("fig1.2"); ok {
		t.Error("corrupt checkpoint must not load")
	}
}

func TestSaveIsAtomicReplacement(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, testKey())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save("overhead", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Save("overhead", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Load("overhead")
	if !ok || string(got) != "v2" {
		t.Fatalf("load after overwrite = %q, %v", got, ok)
	}
	// No .tmp residue after successful saves.
	if left, _ := filepath.Glob(filepath.Join(dir, "*.tmp")); len(left) != 0 {
		t.Errorf("tmp files left behind: %v", left)
	}
}

func TestValidateDir(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, testKey())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"table5.1", "fig6.18"} {
		if err := s.Save(name, []byte(name+" output")); err != nil {
			t.Fatal(err)
		}
	}
	// A leftover tmp file from an interrupted save is ignored.
	if err := os.WriteFile(filepath.Join(dir, "fig1.3.ckpt.json.tmp"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	entries, err := ValidateDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("%d entries, want 2", len(entries))
	}
	if entries[0].Experiment != "fig6.18" || entries[1].Experiment != "table5.1" {
		t.Errorf("entries out of order: %s, %s", entries[0].Experiment, entries[1].Experiment)
	}

	// A wrong-schema file fails validation loudly.
	bad := `{"schema":"synts-ckpt/v0","experiment":"x","key":{},"output":""}` + "\n"
	if err := os.WriteFile(filepath.Join(dir, "x.ckpt.json"), []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateDir(dir); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("wrong schema must fail validation, got %v", err)
	}
}

func TestValidateFileNameMismatch(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, testKey())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save("fig1.4", []byte("y")); err != nil {
		t.Fatal(err)
	}
	renamed := filepath.Join(dir, "fig9.9.ckpt.json")
	if err := os.Rename(filepath.Join(dir, "fig1.4.ckpt.json"), renamed); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateFile(renamed); err == nil {
		t.Error("file name / experiment mismatch must fail validation")
	}
}

// An injected ckpt-write-fail fires between the .tmp write and the
// rename: Save errors, the stray .tmp stays behind, and both Load and
// ValidateDir treat the directory as having no checkpoint. Once the
// fault clears, the same experiment checkpoints normally.
func TestSaveInjectedWriteFaultLeavesTmp(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Key{Size: 1, Seed: 1, Threads: 1, Intervals: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := faults.Enable(faults.CkptWriteFail+"=1", 1); err != nil {
		t.Fatal(err)
	}
	defer faults.Disable()
	if err := s.Save("fig1.2", []byte("rendered\n")); err == nil {
		t.Fatal("injected write fault did not surface from Save")
	}
	if _, err := os.Stat(filepath.Join(dir, "fig1.2.ckpt.json.tmp")); err != nil {
		t.Errorf("stray .tmp missing after injected fault: %v", err)
	}
	if _, ok := s.Load("fig1.2"); ok {
		t.Error("Load returned a checkpoint that was never renamed into place")
	}
	entries, err := ValidateDir(dir)
	if err != nil {
		t.Fatalf("ValidateDir tripped over the stray .tmp: %v", err)
	}
	if len(entries) != 0 {
		t.Fatalf("ValidateDir found %d checkpoints, want 0", len(entries))
	}
	faults.Disable()
	if err := s.Save("fig1.2", []byte("rendered\n")); err != nil {
		t.Fatalf("Save after the fault cleared: %v", err)
	}
	if out, ok := s.Load("fig1.2"); !ok || string(out) != "rendered\n" {
		t.Fatalf("Load after recovery = %q, %v", out, ok)
	}
}
