// Package ckpt persists completed experiment results of a synts batch run
// so an interrupted invocation can resume without redoing finished work.
//
// The unit of checkpointing is one experiment's rendered stdout bytes: the
// batch runner already renders every experiment into a private buffer (for
// order-independent output), so the buffer is exactly the replayable
// artefact. Each checkpoint is one schema-versioned JSON file
// ("synts-ckpt/v1") keyed by the workload configuration (size, seed,
// threads, intervals); a checkpoint written under any other configuration
// is ignored rather than replayed, so stale directories can never leak
// wrong bytes into a run. Files are written atomically (tmp + rename) —
// a SIGKILL mid-write leaves either the old file or none, never a torn one.
package ckpt

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"synts/internal/faults"
)

// SchemaVersion identifies the checkpoint file format.
const SchemaVersion = "synts-ckpt/v1"

// Key fingerprints the workload configuration a checkpoint is valid for.
// Two runs with equal keys produce byte-identical experiment output, which
// is what makes replaying a checkpointed buffer sound.
type Key struct {
	Size      int   `json:"size"`
	Seed      int64 `json:"seed"`
	Threads   int   `json:"threads"`
	Intervals int   `json:"intervals"`
}

// Entry is one checkpoint file: the rendered output of one completed
// experiment under one workload configuration.
type Entry struct {
	Schema     string `json:"schema"`
	Experiment string `json:"experiment"`
	Key        Key    `json:"key"`
	Output     []byte `json:"output"`
}

// Store reads and writes checkpoints in one directory under one key.
type Store struct {
	dir string
	key Key
}

// Open prepares dir (creating it if needed) for checkpoints under key.
func Open(dir string, key Key) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Store{dir: dir, key: key}, nil
}

func (s *Store) path(experiment string) string {
	return filepath.Join(s.dir, experiment+".ckpt.json")
}

// Load returns the stored output for experiment, or ok = false when no
// usable checkpoint exists — missing, unreadable, wrong schema, another
// experiment's file, or a different workload configuration. A resume must
// then recompute; it never fails over a bad checkpoint.
func (s *Store) Load(experiment string) ([]byte, bool) {
	out, ok, _ := s.LoadChecked(experiment)
	return out, ok
}

// LoadChecked is Load with the cause surfaced: ok-and-nil-error on a
// usable checkpoint, a nil error when the file simply does not exist, and
// a descriptive error when a file is present but unusable (torn JSON, a
// foreign experiment's bytes, another configuration's key). Callers that
// share a directory with other writers — the solver service's warm dir
// hosts N daemons at once — use the distinction to count rejected blobs
// instead of silently treating damage as a miss.
func (s *Store) LoadChecked(experiment string) ([]byte, bool, error) {
	raw, err := os.ReadFile(s.path(experiment))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, false, nil
		}
		return nil, false, err
	}
	var e Entry
	if err := json.Unmarshal(raw, &e); err != nil {
		return nil, false, fmt.Errorf("ckpt: %s: torn or foreign blob: %w", experiment, err)
	}
	switch {
	case e.Schema != SchemaVersion:
		return nil, false, fmt.Errorf("ckpt: %s: schema %q, want %q", experiment, e.Schema, SchemaVersion)
	case e.Experiment != experiment:
		return nil, false, fmt.Errorf("ckpt: %s: entry names experiment %q", experiment, e.Experiment)
	case e.Key != s.key:
		return nil, false, fmt.Errorf("ckpt: %s: written under another workload key", experiment)
	}
	return e.Output, true, nil
}

// Names lists the experiments with a usable checkpoint under this store's
// key, sorted. Unreadable files, stale .tmp leftovers and entries written
// under another configuration are skipped, mirroring Load — the solver
// service uses this at startup to report how many warm-start entries it
// inherited without trusting any of them blindly.
func (s *Store) Names() []string {
	paths, err := filepath.Glob(filepath.Join(s.dir, "*.ckpt.json"))
	if err != nil {
		return nil
	}
	sort.Strings(paths)
	var names []string
	for _, p := range paths {
		name := filepath.Base(p)
		name = name[:len(name)-len(".ckpt.json")]
		if _, ok := s.Load(name); ok {
			names = append(names, name)
		}
	}
	return names
}

// Save atomically records experiment's rendered output: the entry is
// written to a temporary file in the same directory and renamed into
// place, so a concurrent reader (or a kill at any instant) sees either
// the previous checkpoint or the complete new one.
func (s *Store) Save(experiment string, output []byte) error {
	e := Entry{Schema: SchemaVersion, Experiment: experiment, Key: s.key, Output: output}
	raw, err := json.Marshal(&e)
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	tmp := s.path(experiment) + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return err
	}
	if faults.Enabled() && faults.CkptSaveFail(experiment) {
		// Chaos harness: the write "succeeded" but the device died before
		// the rename — exactly the window tmp-then-rename defends. The
		// stray .tmp is deliberately left behind: ValidateDir and Load
		// must ignore it.
		return fmt.Errorf("ckpt: %s: injected write fault before rename (checkpoint lost, .tmp left)", experiment)
	}
	return os.Rename(tmp, s.path(experiment))
}

// ValidateFile checks one checkpoint file against the synts-ckpt/v1
// contract and returns its entry.
func ValidateFile(path string) (*Entry, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var e Entry
	if err := json.Unmarshal(raw, &e); err != nil {
		return nil, fmt.Errorf("%s: not a checkpoint: %w", path, err)
	}
	if e.Schema != SchemaVersion {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, e.Schema, SchemaVersion)
	}
	if e.Experiment == "" {
		return nil, fmt.Errorf("%s: empty experiment name", path)
	}
	if want := e.Experiment + ".ckpt.json"; filepath.Base(path) != want {
		return nil, fmt.Errorf("%s: file name does not match experiment %q", path, e.Experiment)
	}
	return &e, nil
}

// ValidateDir validates every checkpoint in dir and returns the entries
// sorted by experiment name. Leftover .tmp files are ignored (an
// interrupted Save may leave one; it is garbage, not corruption).
func ValidateDir(dir string) ([]*Entry, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.ckpt.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	entries := make([]*Entry, 0, len(paths))
	for _, p := range paths {
		e, err := ValidateFile(p)
		if err != nil {
			return nil, err
		}
		entries = append(entries, e)
	}
	return entries, nil
}
