package ckpt

import (
	"reflect"
	"testing"
)

func TestStoreNames(t *testing.T) {
	dir := t.TempDir()
	key := Key{Size: 2, Seed: 1, Threads: 4, Intervals: 3}
	st, err := Open(dir, key)
	if err != nil {
		t.Fatal(err)
	}
	if names := st.Names(); len(names) != 0 {
		t.Fatalf("fresh store lists %v", names)
	}
	for _, name := range []string{"fig6.12", "table5.1", "fig1.2"} {
		if err := st.Save(name, []byte(name+" output")); err != nil {
			t.Fatal(err)
		}
	}
	want := []string{"fig1.2", "fig6.12", "table5.1"}
	if got := st.Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v (sorted)", got, want)
	}

	// A store opened over the same directory with a different key must not
	// list the stale entries — the same defence Load has.
	other, err := Open(dir, Key{Size: 3, Seed: 9, Threads: 4, Intervals: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := other.Names(); len(got) != 0 {
		t.Fatalf("mismatched-key store lists %v", got)
	}
}
