// Package flight is the repository's generic singleflight layer: a
// concurrency-safe memo that guarantees exactly one execution per key
// while concurrent callers for the same key block on (and share) that
// execution's result. It generalises the pattern that grew up twice in
// internal/exp — BenchCache (kernel runs shared across experiments) and
// the per-stage profile memo inside Bench — and adds the third user the
// solver service needs: in-flight request coalescing, where the entry is
// forgotten once the shared computation completes so the memo holds only
// work that is currently running.
//
// Two usage modes fall out of one type:
//
//   - cache mode (BenchCache, profile builds): call Do and keep the entry;
//     later callers are hits. DiscardIf drops entries whose computation was
//     aborted (context cancellation must not poison the cache).
//   - coalesce mode (the solve service): the winning caller runs the
//     computation and calls Forget when done; every caller that joined
//     mid-flight shares the result, and the next request for the same key
//     computes afresh (a separate warm cache decides whether that is
//     cheap).
package flight

import "sync"

// Outcome classifies one Do call for the caller's metrics: a fresh entry
// is a Miss (this caller ran the computation), an entry whose computation
// was still running is a Wait (this caller blocked on the winner), and a
// completed entry is a Hit.
type Outcome int

const (
	Miss Outcome = iota
	Wait
	Hit
)

// String returns the obs-counter-suffix spelling of the outcome.
func (o Outcome) String() string {
	switch o {
	case Miss:
		return "miss"
	case Wait:
		return "wait"
	default:
		return "hit"
	}
}

// call is one key's memoized computation.
type call[V any] struct {
	once sync.Once
	done chan struct{} // closed when the computation has finished
	v    V
	err  error
}

// Memo is a keyed singleflight memo. The zero value is ready to use; a
// Memo must not be copied after first use.
type Memo[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*call[V]
}

// Do returns the memoized value for key, computing it with fn on first
// use. Exactly one caller per key runs fn (even under concurrency); all
// others receive the same value and error. The returned Outcome says how
// this caller was served. fn runs without the Memo's lock held, so
// computations for different keys proceed concurrently and fn may use the
// Memo reentrantly for other keys.
func (m *Memo[K, V]) Do(key K, fn func() (V, error)) (V, error, Outcome) {
	m.mu.Lock()
	if m.m == nil {
		m.m = make(map[K]*call[V])
	}
	c, existed := m.m[key]
	if !existed {
		c = &call[V]{done: make(chan struct{})}
		m.m[key] = c
	}
	m.mu.Unlock()

	outcome := Miss
	if existed {
		outcome = Wait
		select {
		case <-c.done:
			outcome = Hit
		default:
		}
	}
	c.once.Do(func() {
		defer close(c.done)
		c.v, c.err = fn()
	})
	if outcome == Wait {
		// The winner may still be inside fn on another goroutine (our
		// once.Do returned without running it); the result is only
		// readable after done closes.
		<-c.done
	}
	return c.v, c.err, outcome
}

// Forget removes key's entry. Callers already sharing the in-flight
// computation are unaffected (they hold the call, not the map slot); the
// next Do for the key computes afresh. This is the coalesce-mode
// completion hook.
func (m *Memo[K, V]) Forget(key K) {
	m.mu.Lock()
	delete(m.m, key)
	m.mu.Unlock()
}

// DiscardIf removes key's entry if pred approves its recorded error.
// Cache-mode users call it after Do with a predicate matching
// context-cancellation errors, so an aborted computation does not poison
// the memo: the entry is discarded only while it is still the one this
// caller observed, never a fresh replacement.
func (m *Memo[K, V]) DiscardIf(key K, pred func(error) bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.m[key]
	if !ok {
		return
	}
	select {
	case <-c.done:
	default:
		return // still running; its own Do call will decide
	}
	if pred(c.err) {
		delete(m.m, key)
	}
}

// Len returns the number of live entries (cached or in flight).
func (m *Memo[K, V]) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.m)
}
