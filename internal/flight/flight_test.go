package flight

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestDoMemoizes(t *testing.T) {
	var m Memo[string, int]
	var calls atomic.Int64
	fn := func() (int, error) {
		calls.Add(1)
		return 42, nil
	}
	v, err, out := m.Do("k", fn)
	if v != 42 || err != nil || out != Miss {
		t.Fatalf("first Do = (%d, %v, %v), want (42, nil, Miss)", v, err, out)
	}
	v, err, out = m.Do("k", fn)
	if v != 42 || err != nil || out != Hit {
		t.Fatalf("second Do = (%d, %v, %v), want (42, nil, Hit)", v, err, out)
	}
	if calls.Load() != 1 {
		t.Fatalf("fn ran %d times, want 1", calls.Load())
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d, want 1", m.Len())
	}
}

func TestDoSharesErrors(t *testing.T) {
	var m Memo[int, string]
	boom := errors.New("boom")
	_, err, _ := m.Do(7, func() (string, error) { return "", boom })
	if err != boom {
		t.Fatalf("err = %v, want boom", err)
	}
	_, err, out := m.Do(7, func() (string, error) { t.Fatal("must not rerun"); return "", nil })
	if err != boom || out != Hit {
		t.Fatalf("cached err = (%v, %v), want (boom, Hit)", err, out)
	}
}

func TestConcurrentSingleExecution(t *testing.T) {
	var m Memo[string, int]
	var calls atomic.Int64
	release := make(chan struct{})
	const n = 32
	var wg sync.WaitGroup
	outcomes := make([]Outcome, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err, out := m.Do("key", func() (int, error) {
				calls.Add(1)
				<-release
				return 99, nil
			})
			if v != 99 || err != nil {
				t.Errorf("Do = (%d, %v), want (99, nil)", v, err)
			}
			outcomes[i] = out
		}(i)
	}
	// Let every goroutine reach Do before releasing the winner; the
	// winner blocks inside fn so late arrivals classify as Wait.
	close(release)
	wg.Wait()
	if calls.Load() != 1 {
		t.Fatalf("fn ran %d times, want 1", calls.Load())
	}
	misses := 0
	for _, o := range outcomes {
		if o == Miss {
			misses++
		}
	}
	if misses != 1 {
		t.Fatalf("got %d Miss outcomes, want exactly 1", misses)
	}
}

func TestForgetRecomputes(t *testing.T) {
	var m Memo[string, int]
	n := 0
	fn := func() (int, error) { n++; return n, nil }
	v, _, _ := m.Do("k", fn)
	if v != 1 {
		t.Fatalf("first = %d, want 1", v)
	}
	m.Forget("k")
	if m.Len() != 0 {
		t.Fatalf("Len after Forget = %d, want 0", m.Len())
	}
	v, _, out := m.Do("k", fn)
	if v != 2 || out != Miss {
		t.Fatalf("after Forget = (%d, %v), want (2, Miss)", v, out)
	}
}

func TestDiscardIfEvictsCanceled(t *testing.T) {
	var m Memo[string, int]
	_, err, _ := m.Do("k", func() (int, error) { return 0, context.Canceled })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	m.DiscardIf("k", func(e error) bool { return errors.Is(e, context.Canceled) })
	if m.Len() != 0 {
		t.Fatalf("canceled entry not evicted, Len = %d", m.Len())
	}
	// A successful entry must survive the same predicate.
	m.Do("k", func() (int, error) { return 5, nil })
	m.DiscardIf("k", func(e error) bool { return errors.Is(e, context.Canceled) })
	if m.Len() != 1 {
		t.Fatalf("successful entry evicted, Len = %d", m.Len())
	}
}

func TestDistinctKeysIndependent(t *testing.T) {
	var m Memo[int, int]
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err, _ := m.Do(i, func() (int, error) { return i * i, nil })
			if v != i*i || err != nil {
				t.Errorf("key %d = (%d, %v)", i, v, err)
			}
		}(i)
	}
	wg.Wait()
	if m.Len() != 8 {
		t.Fatalf("Len = %d, want 8", m.Len())
	}
}

func TestOutcomeString(t *testing.T) {
	for _, tc := range []struct {
		o    Outcome
		want string
	}{{Miss, "miss"}, {Wait, "wait"}, {Hit, "hit"}} {
		if got := tc.o.String(); got != tc.want {
			t.Errorf("Outcome(%d).String() = %q, want %q", tc.o, got, tc.want)
		}
	}
}

func ExampleMemo() {
	var m Memo[string, string]
	v, _, out := m.Do("greet", func() (string, error) { return "hello", nil })
	fmt.Println(v, out)
	v, _, out = m.Do("greet", func() (string, error) { return "never", nil })
	fmt.Println(v, out)
	// Output:
	// hello miss
	// hello hit
}
