package netlist

import (
	"testing"
	"testing/quick"
)

// addVia evaluates a standalone adder netlist on (a, b).
func addVia(n *Netlist, a, b uint64) (sum uint64, cout bool) {
	in := make([]bool, len(n.Inputs))
	n.SetBusUint(in, n.InputBus("a"), a)
	n.SetBusUint(in, n.InputBus("b"), b)
	vals := n.Eval(in, nil)
	return BusUint(vals, n.OutputBus("s")), BusUint(vals, n.OutputBus("cout")) == 1
}

func TestAdderKindsString(t *testing.T) {
	for _, k := range []AdderKind{AdderRipple, AdderKoggeStone, AdderBrentKung} {
		if k.String() == "" {
			t.Errorf("kind %d has empty name", k)
		}
	}
	if AdderKind(99).String() == "" {
		t.Error("unknown kind must still render")
	}
}

func TestAllAddersExhaustive8(t *testing.T) {
	for _, kind := range []AdderKind{AdderRipple, AdderKoggeStone, AdderBrentKung} {
		n := NewAdderNetlist(kind, 8)
		for a := 0; a < 256; a += 5 {
			for b := 0; b < 256; b += 7 {
				sum, cout := addVia(n, uint64(a), uint64(b))
				want := a + b
				if sum != uint64(want&0xFF) || cout != (want > 0xFF) {
					t.Fatalf("%v: %d+%d = %d cout %v, want %d", kind, a, b, sum, cout, want)
				}
			}
		}
	}
}

// Property: all three adder architectures agree with Go addition at width 32.
func TestAddersAgreeProperty(t *testing.T) {
	ks := NewAdderNetlist(AdderKoggeStone, 32)
	bk := NewAdderNetlist(AdderBrentKung, 32)
	rp := NewAdderNetlist(AdderRipple, 32)
	f := func(a, b uint32) bool {
		want := uint64(a) + uint64(b)
		for _, n := range []*Netlist{ks, bk, rp} {
			sum, cout := addVia(n, uint64(a), uint64(b))
			got := sum
			if cout {
				got |= 1 << 32
			}
			if got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestAdderArchitectureTradeoffs(t *testing.T) {
	// Structural expectations: Kogge-Stone has the most cells; Brent-Kung
	// fewer prefix cells than Kogge-Stone but more depth; ripple the
	// fewest cells and by far the longest chain. Depth is measured via the
	// STA in the timing package, so here compare only cell counts.
	counts := map[AdderKind]int{}
	for _, kind := range []AdderKind{AdderRipple, AdderKoggeStone, AdderBrentKung} {
		counts[kind] = len(NewAdderNetlist(kind, 32).Gates)
	}
	if !(counts[AdderRipple] < counts[AdderBrentKung] && counts[AdderBrentKung] < counts[AdderKoggeStone]) {
		t.Errorf("cell counts: ripple %d, brent-kung %d, kogge-stone %d — expected strictly increasing",
			counts[AdderRipple], counts[AdderBrentKung], counts[AdderKoggeStone])
	}
}

func TestBrentKungWithCarryIn(t *testing.T) {
	// BrentKungAdder handles cin (used standalone with cin = 1).
	b := NewBuilder("bk-cin")
	b.SetVariation(0)
	a := b.InputBusN("a", 8)
	x := b.InputBusN("b", 8)
	one := b.Const(true)
	sum, cout := BrentKungAdder(b, a.Nets, x.Nets, one)
	b.OutputBusN("s", sum)
	b.Output("cout", cout)
	n := b.MustBuild()
	for _, c := range [][2]uint64{{0, 0}, {1, 2}, {255, 255}, {254, 1}} {
		s, co := addVia(n, c[0], c[1])
		want := c[0] + c[1] + 1
		if s != want&0xFF || co != (want > 0xFF) {
			t.Fatalf("bk cin: %d+%d+1 = %d cout %v", c[0], c[1], s, co)
		}
	}
}

func TestDivider8Exhaustive(t *testing.T) {
	n := NewDivider(8)
	in := make([]bool, len(n.Inputs))
	for a := 0; a < 256; a += 3 {
		for b := 1; b < 256; b += 5 {
			n.SetBusUint(in, n.InputBus("a"), uint64(a))
			n.SetBusUint(in, n.InputBus("b"), uint64(b))
			vals := n.Eval(in, nil)
			q := BusUint(vals, n.OutputBus("q"))
			r := BusUint(vals, n.OutputBus("r"))
			if q != uint64(a/b) || r != uint64(a%b) {
				t.Fatalf("%d/%d = q %d r %d, want q %d r %d", a, b, q, r, a/b, a%b)
			}
		}
	}
}

func TestDividerByZeroIsDefined(t *testing.T) {
	n := NewDivider(8)
	in := make([]bool, len(n.Inputs))
	n.SetBusUint(in, n.InputBus("a"), 0xAB)
	n.SetBusUint(in, n.InputBus("b"), 0)
	vals := n.Eval(in, nil)
	if q := BusUint(vals, n.OutputBus("q")); q != 0xFF {
		t.Errorf("q = %#x, want all-ones", q)
	}
	if r := BusUint(vals, n.OutputBus("r")); r != 0xAB {
		t.Errorf("r = %#x, want dividend", r)
	}
}

func TestDivider32Property(t *testing.T) {
	n := NewDivider(32)
	in := make([]bool, len(n.Inputs))
	var vals []bool
	f := func(a, b uint32) bool {
		if b == 0 {
			b = 1
		}
		n.SetBusUint(in, n.InputBus("a"), uint64(a))
		n.SetBusUint(in, n.InputBus("b"), uint64(b))
		vals = n.Eval(in, vals)
		return BusUint(vals, n.OutputBus("q")) == uint64(a/b) &&
			BusUint(vals, n.OutputBus("r")) == uint64(a%b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
