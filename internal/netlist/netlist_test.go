package netlist

import (
	"testing"
	"testing/quick"

	"synts/internal/gates"
	"synts/internal/isa"
)

func TestBuilderSingleGate(t *testing.T) {
	b := NewBuilder("t")
	a := b.Input("a")
	x := b.Input("b")
	y := b.Gate(gates.AND2, a, x)
	b.Output("y", y)
	n, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if n.NumNets() != 3 {
		t.Errorf("NumNets = %d, want 3", n.NumNets())
	}
	if n.Driver(a) != -1 || n.Driver(x) != -1 {
		t.Error("inputs must have no driver")
	}
	if n.Driver(y) != 0 {
		t.Errorf("Driver(y) = %d, want 0", n.Driver(y))
	}
	vals := n.Eval([]bool{true, true}, nil)
	if !vals[y] {
		t.Error("AND(1,1) must be 1")
	}
	vals = n.Eval([]bool{true, false}, vals)
	if vals[y] {
		t.Error("AND(1,0) must be 0")
	}
}

func TestBuilderRejectsEmpty(t *testing.T) {
	if _, err := NewBuilder("t").Build(); err == nil {
		t.Error("empty netlist must not build")
	}
	b := NewBuilder("t")
	b.Input("a")
	if _, err := b.Build(); err == nil {
		t.Error("netlist without outputs must not build")
	}
}

func TestBuilderGateArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("wrong arity did not panic")
		}
	}()
	b := NewBuilder("t")
	a := b.Input("a")
	b.Gate(gates.AND2, a) // missing second input
}

func TestBusLookupPanics(t *testing.T) {
	n := mustSmallALU(t)
	defer func() {
		if recover() == nil {
			t.Fatal("unknown bus lookup did not panic")
		}
	}()
	n.InputBus("nope")
}

func mustSmallALU(t *testing.T) *Netlist {
	t.Helper()
	return NewSimpleALU(8)
}

// evalALU runs the SimpleALU netlist for one op and returns y.
func evalALU(n *Netlist, op int, a, x uint64, width int) uint64 {
	in := make([]bool, len(n.Inputs))
	n.SetBusUint(in, n.InputBus("op"), uint64(op))
	n.SetBusUint(in, n.InputBus("a"), a)
	n.SetBusUint(in, n.InputBus("b"), x)
	vals := n.Eval(in, nil)
	return BusUint(vals, n.OutputBus("y"))
}

func TestSimpleALU8Exhaustive(t *testing.T) {
	// Exhaustive over a coarse operand grid, all 8 ops, width 8.
	n := NewSimpleALU(8)
	ref := func(op int, a, x uint8) uint8 {
		switch op {
		case ALUAdd:
			return a + x
		case ALUSub:
			return a - x
		case ALUAnd:
			return a & x
		case ALUOr:
			return a | x
		case ALUXor:
			return a ^ x
		case ALUSlt:
			if int8(a) < int8(x) {
				return 1
			}
			return 0
		case ALUShl:
			return a << (x & 7)
		case ALUShr:
			return a >> (x & 7)
		}
		panic("bad op")
	}
	vecs := []uint8{0, 1, 2, 3, 7, 8, 15, 16, 31, 63, 64, 127, 128, 200, 254, 255}
	for op := 0; op < 8; op++ {
		for _, a := range vecs {
			for _, x := range vecs {
				got := uint8(evalALU(n, op, uint64(a), uint64(x), 8))
				want := ref(op, a, x)
				if got != want {
					t.Fatalf("ALU8 op=%d a=%d b=%d: got %d, want %d", op, a, x, got, want)
				}
			}
		}
	}
}

func TestSimpleALU32MatchesGoSemantics(t *testing.T) {
	n := NewSimpleALU(32)
	f := func(opRaw uint8, a, x uint32) bool {
		op := int(opRaw % 8)
		got := uint32(evalALU(n, op, uint64(a), uint64(x), 32))
		var want uint32
		switch op {
		case ALUAdd:
			want = a + x
		case ALUSub:
			want = a - x
		case ALUAnd:
			want = a & x
		case ALUOr:
			want = a | x
		case ALUXor:
			want = a ^ x
		case ALUSlt:
			if int32(a) < int32(x) {
				want = 1
			}
		case ALUShl:
			want = a << (x & 31)
		case ALUShr:
			want = a >> (x & 31)
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSimpleALUFlags(t *testing.T) {
	n := NewSimpleALU(8)
	in := make([]bool, len(n.Inputs))
	carry := func(a, b uint64) uint64 {
		n.SetBusUint(in, n.InputBus("op"), ALUAdd)
		n.SetBusUint(in, n.InputBus("a"), a)
		n.SetBusUint(in, n.InputBus("b"), b)
		vals := n.Eval(in, nil)
		return BusUint(vals, n.OutputBus("flags")) & 1
	}
	if carry(0xFF, 0x01) != 1 {
		t.Error("0xFF + 1 must set carry flag")
	}
	if carry(0x10, 0x01) != 0 {
		t.Error("0x10 + 1 must not set carry flag")
	}
}

func TestMultiplier8Exhaustive(t *testing.T) {
	n := NewMultiplier(8)
	in := make([]bool, len(n.Inputs))
	for a := 0; a < 256; a += 3 {
		for x := 0; x < 256; x += 7 {
			n.SetBusUint(in, n.InputBus("a"), uint64(a))
			n.SetBusUint(in, n.InputBus("b"), uint64(x))
			vals := n.Eval(in, nil)
			got := BusUint(vals, n.OutputBus("p"))
			if want := uint64(a * x); got != want {
				t.Fatalf("mult8 %d*%d: got %d, want %d", a, x, got, want)
			}
		}
	}
}

func TestMultiplier32Property(t *testing.T) {
	n := NewMultiplier(32)
	in := make([]bool, len(n.Inputs))
	var vals []bool
	f := func(a, x uint32) bool {
		n.SetBusUint(in, n.InputBus("a"), uint64(a))
		n.SetBusUint(in, n.InputBus("b"), uint64(x))
		vals = n.Eval(in, vals)
		return BusUint(vals, n.OutputBus("p")) == uint64(a)*uint64(x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestComplexALUMulAndMac(t *testing.T) {
	n := NewComplexALU(16)
	in := make([]bool, len(n.Inputs))
	var vals []bool
	f := func(a, x, c uint16, mac bool) bool {
		op := uint64(0)
		if mac {
			op = 1
		}
		n.SetBusUint(in, n.InputBus("op"), op)
		n.SetBusUint(in, n.InputBus("a"), uint64(a))
		n.SetBusUint(in, n.InputBus("b"), uint64(x))
		n.SetBusUint(in, n.InputBus("c"), uint64(c))
		vals = n.Eval(in, vals)
		want := uint64(a) * uint64(x)
		if mac {
			want += uint64(c)
		}
		return BusUint(vals, n.OutputBus("p")) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBarrelShifterStandalone(t *testing.T) {
	b := NewBuilder("shift")
	a := b.InputBusN("a", 16)
	sh := b.InputBusN("sh", 4)
	dir := b.Input("dir")
	y := BarrelShifter(b, a.Nets, sh.Nets, dir)
	b.OutputBusN("y", y)
	n := b.MustBuild()

	in := make([]bool, len(n.Inputs))
	for _, v := range []uint16{0, 1, 0x8000, 0xABCD, 0xFFFF} {
		for s := 0; s < 16; s++ {
			for d := 0; d < 2; d++ {
				n.SetBusUint(in, n.InputBus("a"), uint64(v))
				n.SetBusUint(in, n.InputBus("sh"), uint64(s))
				n.SetBusUint(in, n.InputBus("dir"), uint64(d))
				vals := n.Eval(in, nil)
				got := uint16(BusUint(vals, n.OutputBus("y")))
				want := v << uint(s)
				if d == 1 {
					want = v >> uint(s)
				}
				if got != want {
					t.Fatalf("shift v=%#x s=%d dir=%d: got %#x, want %#x", v, s, d, got, want)
				}
			}
		}
	}
}

func TestDecodeOneHot(t *testing.T) {
	n := NewDecode()
	in := make([]bool, len(n.Inputs))
	for op := 0; op < isa.NumOps; op++ {
		w := isa.Encode(isa.Inst{Op: isa.Op(op), Rd: 1, Rs: 2, Rt: 3})
		n.SetBusUint(in, n.InputBus("instr"), uint64(w))
		vals := n.Eval(in, nil)
		oh := BusUint(vals, n.OutputBus("onehot"))
		if oh != 1<<uint(op) {
			t.Errorf("op %v: onehot = %#x, want %#x", isa.Op(op), oh, 1<<uint(op))
		}
	}
}

func TestDecodeControlSignals(t *testing.T) {
	n := NewDecode()
	in := make([]bool, len(n.Inputs))
	get := func(op isa.Op) uint64 {
		w := isa.Encode(isa.Inst{Op: op})
		n.SetBusUint(in, n.InputBus("instr"), uint64(w))
		vals := n.Eval(in, nil)
		return BusUint(vals, n.OutputBus("ctrl"))
	}
	const (
		regWrite = 1 << 0
		memRead  = 1 << 1
		memWrite = 1 << 2
		branch   = 1 << 3
		useImm   = 1 << 4
		simple   = 1 << 5
		complx   = 1 << 6
	)
	cases := []struct {
		op   isa.Op
		want uint64
	}{
		{isa.ADD, regWrite | simple},
		{isa.ADDI, regWrite | useImm | simple},
		{isa.MUL, regWrite | complx},
		{isa.LD, regWrite | memRead | useImm},
		{isa.ST, memWrite | useImm},
		{isa.BEQ, branch | useImm},
		{isa.NOP, 0},
		{isa.JMP, useImm},
	}
	for _, c := range cases {
		if got := get(c.op); got != c.want {
			t.Errorf("%v: ctrl = %07b, want %07b", c.op, got, c.want)
		}
	}
}

func TestDecodeALUOpMatchesSimpleALUEncoding(t *testing.T) {
	n := NewDecode()
	in := make([]bool, len(n.Inputs))
	want := map[isa.Op]uint64{
		isa.ADD: ALUAdd, isa.ADDI: ALUAdd, isa.LD: ALUAdd, isa.ST: ALUAdd,
		isa.SUB: ALUSub, isa.BEQ: ALUSub, isa.BNE: ALUSub,
		isa.AND: ALUAnd, isa.OR: ALUOr, isa.XOR: ALUXor,
		isa.SLT: ALUSlt, isa.SHL: ALUShl, isa.SHR: ALUShr,
	}
	for op, aluop := range want {
		w := isa.Encode(isa.Inst{Op: op})
		n.SetBusUint(in, n.InputBus("instr"), uint64(w))
		vals := n.Eval(in, nil)
		if got := BusUint(vals, n.OutputBus("aluop")); got != aluop {
			t.Errorf("%v: aluop = %d, want %d", op, got, aluop)
		}
	}
}

func TestDecodeImmediateSignExtension(t *testing.T) {
	n := NewDecode()
	in := make([]bool, len(n.Inputs))
	cases := []struct {
		op   isa.Op
		imm  uint16
		want uint32
	}{
		{isa.ADDI, 0x0005, 0x00000005},
		{isa.ADDI, 0x8000, 0xFFFF8000},
		{isa.LD, 0xFFFF, 0xFFFFFFFF},
		{isa.ADD, 0xFFFF, 0}, // R-format: imm bus isolated
	}
	for _, c := range cases {
		w := isa.Encode(isa.Inst{Op: c.op, Imm: c.imm, Rt: 0x1f})
		n.SetBusUint(in, n.InputBus("instr"), uint64(w))
		vals := n.Eval(in, nil)
		if got := uint32(BusUint(vals, n.OutputBus("imm"))); got != c.want {
			t.Errorf("%v imm %#x: got %#x, want %#x", c.op, c.imm, got, c.want)
		}
	}
}

func TestDecodeRsEqRt(t *testing.T) {
	n := NewDecode()
	in := make([]bool, len(n.Inputs))
	check := func(rs, rt uint8, want bool) {
		w := isa.Encode(isa.Inst{Op: isa.ADD, Rs: rs, Rt: rt})
		n.SetBusUint(in, n.InputBus("instr"), uint64(w))
		vals := n.Eval(in, nil)
		got := BusUint(vals, n.OutputBus("rseqrt")) == 1
		if got != want {
			t.Errorf("rs=%d rt=%d: rseqrt = %v, want %v", rs, rt, got, want)
		}
	}
	check(5, 5, true)
	check(5, 6, false)
	check(0, 0, true)
	check(31, 30, false)
}

func TestAreaPositiveAndOrdered(t *testing.T) {
	dec := NewDecode()
	alu := NewSimpleALU(32)
	mul := NewComplexALU(32)
	if dec.Area() <= 0 || alu.Area() <= 0 || mul.Area() <= 0 {
		t.Fatal("areas must be positive")
	}
	if !(dec.Area() < alu.Area() && alu.Area() < mul.Area()) {
		t.Errorf("expected area(decode) < area(simplealu) < area(complexalu), got %.0f, %.0f, %.0f",
			dec.Area(), alu.Area(), mul.Area())
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(opRaw, rd, rs, rt uint8, imm uint16) bool {
		op := isa.Op(uint8(opRaw) % uint8(isa.NumOps))
		in := isa.Inst{Op: op, Rd: rd & 31, Rs: rs & 31, Rt: rt & 31, Imm: imm}
		out := isa.Decode(isa.Encode(in))
		if out.Op != in.Op || out.Rd != in.Rd || out.Rs != in.Rs {
			return false
		}
		switch op {
		case isa.ADDI, isa.LD, isa.ST, isa.BEQ, isa.BNE, isa.JMP:
			return out.Imm == in.Imm
		default:
			return out.Rt == in.Rt
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// The Build-time connectivity precompute must agree with a direct walk over
// the gate list: every (net, consumer) edge appears exactly once in the CSR
// fanout lists, lists are ascending, and levels strictly increase along
// every edge — on every stage and arithmetic-family generator.
func TestConnectivityPrecompute(t *testing.T) {
	nls := []*Netlist{
		NewDecode(),
		NewSimpleALU(32),
		NewComplexALU(16),
		NewMultiplier(16),
		NewDivider(16),
		NewAdderNetlist(AdderRipple, 32),
		NewAdderNetlist(AdderKoggeStone, 32),
		NewAdderNetlist(AdderBrentKung, 32),
	}
	for _, n := range nls {
		// Reference fanout from a direct scan.
		want := make([][]int32, n.NumNets())
		for gi, g := range n.Gates {
			for i := 0; i < g.Kind.NumInputs(); i++ {
				want[g.In[i]] = append(want[g.In[i]], int32(gi))
			}
		}
		total := 0
		for tn := 0; tn < n.NumNets(); tn++ {
			got := n.Fanout(Net(tn))
			if len(got) != len(want[tn]) {
				t.Fatalf("%s: net %d fanout size %d, want %d", n.Name, tn, len(got), len(want[tn]))
			}
			for i := range got {
				if got[i] != want[tn][i] {
					t.Fatalf("%s: net %d fanout[%d] = %d, want %d", n.Name, tn, i, got[i], want[tn][i])
				}
				if i > 0 && got[i] <= got[i-1] {
					t.Fatalf("%s: net %d fanout not ascending", n.Name, tn)
				}
			}
			total += len(got)
		}
		// Levels: gate level = 1 + max input net level, bounded by NumLevels.
		netLevel := make([]int, n.NumNets())
		for gi, g := range n.Gates {
			worst := 0
			for i := 0; i < g.Kind.NumInputs(); i++ {
				if l := netLevel[g.In[i]]; l > worst {
					worst = l
				}
			}
			if got := n.GateLevel(gi); got != worst+1 {
				t.Fatalf("%s: gate %d level %d, want %d", n.Name, gi, got, worst+1)
			}
			if n.GateLevel(gi) >= n.NumLevels() {
				t.Fatalf("%s: gate %d level %d >= NumLevels %d", n.Name, gi, n.GateLevel(gi), n.NumLevels())
			}
			netLevel[g.Out] = n.GateLevel(gi)
		}
		if total == 0 {
			t.Fatalf("%s: no fanout edges recorded", n.Name)
		}
	}
}
