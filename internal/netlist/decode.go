package netlist

import (
	"synts/internal/gates"

	"synts/internal/isa"
)

// NewDecode generates the Decode pipe-stage netlist. Its single input bus
// "instr" (32 bits) is the encoded instruction word from the isa package;
// its outputs are the control signals a classic five-stage pipeline derives
// in its decode stage:
//
//	"onehot"   one bit per defined opcode (full 6->NumOps decode plane)
//	"ctrl"     bit0 regWrite, bit1 memRead, bit2 memWrite, bit3 branch,
//	           bit4 useImm, bit5 isSimple, bit6 isComplex
//	"aluop"    3-bit SimpleALU operation select
//	"imm"      32-bit sign-extended immediate
//	"rseqrt"   rs == rt field comparator (hazard/forwarding detect)
//	"btarget"  PC + sign-extended immediate: the branch/jump target the ID
//	           stage computes early (the classic MIPS-style target adder)
//
// The circuit is an AND-plane (opcode one-hot) feeding OR-planes (control
// signals), plus sign extension, a field comparator and the target adder.
// The adder dominates the STA period; its deep carries are sensitised only
// when the incrementing PC or a changing displacement propagates long
// carries, so — like the ALU stages — the critical path manifests rarely
// while the control planes switch mid-distribution. The sensitised profile
// therefore depends on the thread's instruction mix and immediate patterns.
func NewDecode() *Netlist {
	b := NewBuilder("decode")
	instr := b.InputBusN("instr", 32)
	pc := b.InputBusN("pc", 32)
	bit := instr.Nets

	// Opcode literals and their complements, buffered once.
	opBits := bit[26:32] // 6 bits
	nOp := make([]Net, 6)
	for i, t := range opBits {
		nOp[i] = b.Gate(gates.INV, t)
	}
	lit := func(i int, v bool) Net {
		if v {
			return opBits[i]
		}
		return nOp[i]
	}

	// One-hot decode for every defined opcode.
	onehot := make([]Net, isa.NumOps)
	for op := 0; op < isa.NumOps; op++ {
		terms := make([]Net, 6)
		for i := 0; i < 6; i++ {
			terms[i] = lit(i, op&(1<<uint(i)) != 0)
		}
		onehot[op] = andTree(b, terms)
	}
	oh := func(ops ...isa.Op) []Net {
		ns := make([]Net, len(ops))
		for i, o := range ops {
			ns[i] = onehot[o]
		}
		return ns
	}

	// Control OR-planes.
	regWrite := orTree(b, oh(isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR,
		isa.SLT, isa.SHL, isa.SHR, isa.ADDI, isa.MUL, isa.MAC, isa.LD))
	memRead := b.Gate(gates.BUF, onehot[isa.LD])
	memWrite := b.Gate(gates.BUF, onehot[isa.ST])
	branch := b.Gate(gates.OR2, onehot[isa.BEQ], onehot[isa.BNE])
	useImm := orTree(b, oh(isa.ADDI, isa.LD, isa.ST, isa.BEQ, isa.BNE, isa.JMP))
	isSimple := orTree(b, oh(isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR,
		isa.SLT, isa.SHL, isa.SHR, isa.ADDI))
	isComplex := b.Gate(gates.OR2, onehot[isa.MUL], onehot[isa.MAC])

	// SimpleALU op select (matches the ALU* encodings in circuits.go):
	// ADD/ADDI/LD/ST -> 000 (adder also does address generation)
	// SUB/BEQ/BNE    -> 001 (branches compare via subtract)
	// AND 010, OR 011, XOR 100, SLT 101, SHL 110, SHR 111.
	aluop := []Net{
		orTree(b, oh(isa.SUB, isa.BEQ, isa.BNE, isa.OR, isa.SLT, isa.SHR)), // bit0
		orTree(b, oh(isa.AND, isa.OR, isa.SHL, isa.SHR)),                   // bit1
		orTree(b, oh(isa.XOR, isa.SLT, isa.SHL, isa.SHR)),                  // bit2
	}

	// Sign-extended immediate. Low bits pass through buffers (so transitions
	// register as decode activity); high bits replicate bit 15 gated by
	// useImm (operand isolation: R-format words don't wiggle the imm bus).
	imm := make([]Net, 32)
	for i := 0; i < 16; i++ {
		imm[i] = b.Gate(gates.AND2, bit[i], useImm)
	}
	signExt := b.Gate(gates.AND2, bit[15], useImm)
	for i := 16; i < 32; i++ {
		imm[i] = b.Gate(gates.BUF, signExt)
	}

	// rs == rt field comparator (XNOR reduce).
	eqBits := make([]Net, 5)
	for i := 0; i < 5; i++ {
		eqBits[i] = b.Gate(gates.XNOR2, bit[16+i], bit[11+i])
	}
	rsEqRt := andTree(b, eqBits)

	// Early branch/jump target: PC + sign-extended immediate.
	btarget, _ := PrefixAdder(b, pc.Nets, imm, b.Const(false))

	b.OutputBusN("btarget", btarget)
	b.OutputBusN("onehot", onehot)
	b.OutputBusN("ctrl", []Net{regWrite, memRead, memWrite, branch, useImm, isSimple, isComplex})
	b.OutputBusN("aluop", aluop)
	b.OutputBusN("imm", imm)
	b.Output("rseqrt", rsEqRt)
	return b.MustBuild()
}
