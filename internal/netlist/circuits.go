package netlist

import (
	"fmt"

	"synts/internal/gates"
)

// This file contains the structural generators for the arithmetic blocks and
// the three pipe-stage circuits (Decode, SimpleALU, ComplexALU).
//
// All multi-bit values are little-endian: Nets[0] is bit 0.

// fullAdder instantiates a 1-bit full adder and returns (sum, carry).
// sum = a^b^cin; carry = a·b + cin·(a^b). The 5-cell mapping matches a
// standard-cell FA decomposition, whose carry path (XOR2 then AND2+OR2) is
// what forms the ripple critical path.
func fullAdder(b *Builder, a, x, cin Net) (sum, cout Net) {
	axb := b.Gate(gates.XOR2, a, x)
	sum = b.Gate(gates.XOR2, axb, cin)
	t1 := b.Gate(gates.AND2, a, x)
	t2 := b.Gate(gates.AND2, axb, cin)
	cout = b.Gate(gates.OR2, t1, t2)
	return sum, cout
}

// halfAdder returns (sum, carry) for two bits.
func halfAdder(b *Builder, a, x Net) (sum, cout Net) {
	sum = b.Gate(gates.XOR2, a, x)
	cout = b.Gate(gates.AND2, a, x)
	return sum, cout
}

// RippleAdder instantiates a width-bit ripple-carry adder. It returns the
// sum bits and the carry-out net. The carry chain through all width stages
// is the structural critical path, but it is only sensitised when operand
// values propagate a carry end to end, which is exactly the "critical path
// delays are rarely manifested" premise of the thesis.
func RippleAdder(b *Builder, a, x []Net, cin Net) (sum []Net, cout Net) {
	if len(a) != len(x) {
		panic(fmt.Sprintf("netlist: adder operand widths differ: %d vs %d", len(a), len(x)))
	}
	sum = make([]Net, len(a))
	c := cin
	for i := range a {
		sum[i], c = fullAdder(b, a[i], x[i], c)
	}
	return sum, c
}

// PrefixAdder instantiates a width-bit Kogge-Stone parallel-prefix adder —
// the adder class synthesis tools infer for performance-critical datapaths.
// Its log-depth carry tree means typical operand-driven transitions traverse
// a large fraction of the structural critical path, which is what gives
// real pipelines their characteristic "delays cluster near t_nom" profile
// (the ripple adder's linear chain, by contrast, is almost never fully
// sensitized). Returns the sum bits and carry-out.
func PrefixAdder(b *Builder, a, x []Net, cin Net) (sum []Net, cout Net) {
	sum, carries := PrefixAdderCarries(b, a, x, cin)
	return sum, carries[len(a)]
}

// PrefixAdderCarries is PrefixAdder exposing the full carry vector:
// carries[i] is the carry *into* bit i (carries[0] == cin) and carries[w]
// is the carry-out. The SimpleALU uses carries[w-1] for its overflow/SLT
// logic so that the compare result is produced at adder depth rather than
// through a chain of value-masked XOR reconstructions.
func PrefixAdderCarries(b *Builder, a, x []Net, cin Net) (sum []Net, carries []Net) {
	w := len(a)
	if len(x) != w {
		panic(fmt.Sprintf("netlist: adder operand widths differ: %d vs %d", len(a), len(x)))
	}
	p := make([]Net, w) // propagate
	g := make([]Net, w) // generate
	for i := 0; i < w; i++ {
		p[i] = b.Gate(gates.XOR2, a[i], x[i])
		g[i] = b.Gate(gates.AND2, a[i], x[i])
	}
	// Kogge-Stone prefix tree over (G, P).
	gg := append([]Net(nil), g...)
	pp := append([]Net(nil), p...)
	for d := 1; d < w; d <<= 1 {
		ng := append([]Net(nil), gg...)
		np := append([]Net(nil), pp...)
		for i := d; i < w; i++ {
			t1 := b.Gate(gates.AND2, pp[i], gg[i-d])
			ng[i] = b.Gate(gates.OR2, gg[i], t1)
			np[i] = b.Gate(gates.AND2, pp[i], pp[i-d])
		}
		gg, pp = ng, np
	}
	// Carries: c[0] = cin; c[i] = G[i-1] | (P[i-1] & cin).
	carries = make([]Net, w+1)
	carries[0] = cin
	for i := 1; i <= w; i++ {
		t := b.Gate(gates.AND2, pp[i-1], cin)
		carries[i] = b.Gate(gates.OR2, gg[i-1], t)
	}
	sum = make([]Net, w)
	for i := 0; i < w; i++ {
		sum[i] = b.Gate(gates.XOR2, p[i], carries[i])
	}
	return sum, carries
}

// BrentKungAdder instantiates a width-bit Brent-Kung parallel-prefix adder:
// roughly half the prefix cells of Kogge-Stone at about twice the tree
// depth. It exists for the adder-architecture ablation — the choice of
// prefix network changes the shape of the sensitized-delay distribution and
// therefore every err(r) curve. Returns the sum bits and carry-out.
func BrentKungAdder(b *Builder, a, x []Net, cin Net) (sum []Net, cout Net) {
	w := len(a)
	if len(x) != w {
		panic(fmt.Sprintf("netlist: adder operand widths differ: %d vs %d", len(a), len(x)))
	}
	p := make([]Net, w)
	g := make([]Net, w)
	for i := 0; i < w; i++ {
		p[i] = b.Gate(gates.XOR2, a[i], x[i])
		g[i] = b.Gate(gates.AND2, a[i], x[i])
	}
	// Prefix (G,P) combine helper.
	gg := append([]Net(nil), g...)
	pp := append([]Net(nil), p...)
	comb := func(hi, lo int) {
		t1 := b.Gate(gates.AND2, pp[hi], gg[lo])
		gg[hi] = b.Gate(gates.OR2, gg[hi], t1)
		pp[hi] = b.Gate(gates.AND2, pp[hi], pp[lo])
	}
	// Up-sweep: combine at strides 1,2,4,... on the reduction tree.
	for d := 1; d < w; d <<= 1 {
		for i := 2*d - 1; i < w; i += 2 * d {
			comb(i, i-d)
		}
	}
	// Down-sweep: fill in the intermediate prefixes.
	for d := 1 << uint(log2(w)-1); d >= 1; d >>= 1 {
		for i := 3*d - 1; i < w; i += 2 * d {
			comb(i, i-d)
		}
	}
	sum = make([]Net, w)
	sum[0] = b.Gate(gates.XOR2, p[0], cin)
	for i := 1; i < w; i++ {
		t := b.Gate(gates.AND2, pp[i-1], cin)
		c := b.Gate(gates.OR2, gg[i-1], t)
		sum[i] = b.Gate(gates.XOR2, p[i], c)
	}
	tc := b.Gate(gates.AND2, pp[w-1], cin)
	cout = b.Gate(gates.OR2, gg[w-1], tc)
	return sum, cout
}

// AdderKind selects an adder architecture for NewAdderNetlist.
type AdderKind int

// The three adder architectures available for the ablation study.
const (
	AdderRipple AdderKind = iota
	AdderKoggeStone
	AdderBrentKung
)

// String names the adder architecture.
func (k AdderKind) String() string {
	switch k {
	case AdderRipple:
		return "ripple"
	case AdderKoggeStone:
		return "kogge-stone"
	case AdderBrentKung:
		return "brent-kung"
	}
	return fmt.Sprintf("AdderKind(%d)", int(k))
}

// NewAdderNetlist builds a standalone width-bit adder of the given
// architecture with input buses "a", "b" and outputs "s", "cout" — the unit
// under test for the adder ablation.
func NewAdderNetlist(kind AdderKind, width int) *Netlist {
	b := NewBuilder(fmt.Sprintf("adder-%s-%d", kind, width))
	a := b.InputBusN("a", width)
	x := b.InputBusN("b", width)
	zero := b.Const(false)
	var sum []Net
	var cout Net
	switch kind {
	case AdderRipple:
		sum, cout = RippleAdder(b, a.Nets, x.Nets, zero)
	case AdderKoggeStone:
		sum, cout = PrefixAdder(b, a.Nets, x.Nets, zero)
	case AdderBrentKung:
		sum, cout = BrentKungAdder(b, a.Nets, x.Nets, zero)
	default:
		panic("netlist: unknown adder kind")
	}
	b.OutputBusN("s", sum)
	b.Output("cout", cout)
	return b.MustBuild()
}

// bitwise instantiates one 2-input cell per bit pair.
func bitwise(b *Builder, k gates.Kind, a, x []Net) []Net {
	if len(a) != len(x) {
		panic("netlist: bitwise operand widths differ")
	}
	out := make([]Net, len(a))
	for i := range a {
		out[i] = b.Gate(k, a[i], x[i])
	}
	return out
}

// invert instantiates one inverter per bit.
func invert(b *Builder, a []Net) []Net {
	out := make([]Net, len(a))
	for i := range a {
		out[i] = b.Gate(gates.INV, a[i])
	}
	return out
}

// mux2Bus selects a (sel=0) or x (sel=1) bitwise.
func mux2Bus(b *Builder, sel Net, a, x []Net) []Net {
	if len(a) != len(x) {
		panic("netlist: mux operand widths differ")
	}
	out := make([]Net, len(a))
	for i := range a {
		out[i] = b.Gate(gates.MUX2, sel, a[i], x[i])
	}
	return out
}

// BarrelShifter instantiates a logarithmic shifter. dir=0 shifts left,
// dir=1 shifts right (logical). The shift amount bus sh must have
// log2(len(a)) bits. Vacated positions fill with zero.
func BarrelShifter(b *Builder, a []Net, sh []Net, dir Net) []Net {
	w := len(a)
	if 1<<uint(len(sh)) != w {
		panic(fmt.Sprintf("netlist: shifter width %d needs %d shift bits, got %d", w, log2(w), len(sh)))
	}
	zero := b.Const(false)
	cur := append([]Net(nil), a...)
	for s := 0; s < len(sh); s++ {
		amt := 1 << uint(s)
		next := make([]Net, w)
		for i := 0; i < w; i++ {
			// Left shift by amt: bit i comes from bit i-amt.
			var left Net = zero
			if i-amt >= 0 {
				left = cur[i-amt]
			}
			// Right shift by amt: bit i comes from bit i+amt.
			var right Net = zero
			if i+amt < w {
				right = cur[i+amt]
			}
			moved := b.Gate(gates.MUX2, dir, left, right)
			next[i] = b.Gate(gates.MUX2, sh[s], cur[i], moved)
		}
		cur = next
	}
	return cur
}

func log2(w int) int {
	n := 0
	for 1<<uint(n) < w {
		n++
	}
	return n
}

// SimpleALU operation select encodings on the "op" input bus (3 bits).
const (
	ALUAdd = 0
	ALUSub = 1
	ALUAnd = 2
	ALUOr  = 3
	ALUXor = 4
	ALUSlt = 5
	ALUShl = 6
	ALUShr = 7
)

// NewSimpleALU generates the SimpleALU pipe-stage netlist: a width-bit
// adder/subtractor, bitwise logic unit, set-less-than, and a barrel shifter,
// with a mux tree selecting the result. Input buses: "op" (3), "a" (width),
// "b" (width). Output buses: "y" (width), "flags" (2: carry, zero... bit0 =
// carry/borrow-out, bit1 = zero).
//
// width must be a power of two (the shifter requires it); the experiments
// use 32, tests also exercise 8.
func NewSimpleALU(width int) *Netlist {
	if width <= 0 || width&(width-1) != 0 {
		panic(fmt.Sprintf("netlist: SimpleALU width %d must be a power of two", width))
	}
	b := NewBuilder(fmt.Sprintf("simplealu%d", width))
	op := b.InputBusN("op", 3)
	a := b.InputBusN("a", width)
	x := b.InputBusN("b", width)

	// op decode helpers.
	op0, op1, op2 := op.Nets[0], op.Nets[1], op.Nets[2]
	// isSub is true for SUB (001) and SLT (101): op0=1, op1=0.
	nop1 := b.Gate(gates.INV, op1)
	isSub := b.Gate(gates.AND2, op0, nop1)

	// Adder/subtractor: b XOR isSub per bit, carry-in = isSub.
	bsel := make([]Net, width)
	for i := 0; i < width; i++ {
		bsel[i] = b.Gate(gates.XOR2, x.Nets[i], isSub)
	}
	sum, carries := PrefixAdderCarries(b, a.Nets, bsel, isSub)
	cout := carries[width]

	// Logic unit.
	andv := bitwise(b, gates.AND2, a.Nets, x.Nets)
	orv := bitwise(b, gates.OR2, a.Nets, x.Nets)
	xorv := bitwise(b, gates.XOR2, a.Nets, x.Nets)

	// SLT (signed): result bit0 = sign(a-b) XOR overflow, with
	// overflow = carryIn(msb) XOR carryOut, both taken directly from the
	// prefix carry tree so the compare resolves at adder depth.
	ovf := b.Gate(gates.XOR2, carries[width-1], cout)
	sltBit := b.Gate(gates.XOR2, sum[width-1], ovf)
	zero := b.Const(false)
	sltv := make([]Net, width)
	sltv[0] = sltBit
	for i := 1; i < width; i++ {
		sltv[i] = zero
	}

	// Shifter (shared for SHL/SHR, direction = op0: SHL=110, SHR=111).
	sh := sh5(b, x.Nets, width)
	shiftv := BarrelShifter(b, a.Nets, sh, op0)

	// Result mux tree, op = {op2,op1,op0}:
	//  op2=0: op1=0: add/sub (adder)   op1=1: op0=0 and, op0=1 or
	//  op2=1: op1=0: op0=0 xor, op0=1 slt   op1=1: shifter
	andOr := mux2Bus(b, op0, andv, orv)
	low := mux2Bus(b, op1, sum, andOr)
	xorSlt := mux2Bus(b, op0, xorv, sltv)
	high := mux2Bus(b, op1, xorSlt, shiftv)
	y := mux2Bus(b, op2, low, high)

	// Flags: carry/borrow-out. (Zero detection lives in the branch-resolve
	// stage, not here: a wide OR tree whose output almost never changes
	// value would inflate the STA period without ever being the sensitised
	// path, distorting every err(r) curve.)
	b.OutputBusN("y", y)
	b.OutputBusN("flags", []Net{cout})
	return b.MustBuild()
}

// sh5 extracts the low log2(width) bits of x as the shift amount.
func sh5(b *Builder, x []Net, width int) []Net {
	n := log2(width)
	sh := make([]Net, n)
	for i := 0; i < n; i++ {
		// Buffer so the shift-amount fanout is a distinct node.
		sh[i] = b.Gate(gates.BUF, x[i])
	}
	return sh
}

// orTree reduces a bus to a single OR with a balanced tree.
func orTree(b *Builder, v []Net) Net {
	switch len(v) {
	case 0:
		return b.Const(false)
	case 1:
		return v[0]
	}
	mid := len(v) / 2
	return b.Gate(gates.OR2, orTree(b, v[:mid]), orTree(b, v[mid:]))
}

// andTree reduces a bus to a single AND with a balanced tree.
func andTree(b *Builder, v []Net) Net {
	switch len(v) {
	case 0:
		return b.Const(true)
	case 1:
		return v[0]
	}
	mid := len(v) / 2
	return b.Gate(gates.AND2, andTree(b, v[:mid]), andTree(b, v[mid:]))
}

// NewMultiplier generates a width x width array multiplier producing a
// 2*width-bit product. Input buses "a", "b"; output bus "p".
// The carry-save array has a long structural critical path (through the
// last row's ripple), giving the ComplexALU its distinctive, deep delay
// profile.
func NewMultiplier(width int) *Netlist {
	b := NewBuilder(fmt.Sprintf("mult%d", width))
	a := b.InputBusN("a", width)
	x := b.InputBusN("b", width)
	p := multiplierArray(b, a.Nets, x.Nets)
	b.OutputBusN("p", p)
	return b.MustBuild()
}

// multiplierArray builds the unsigned carry-save array multiplier core and
// returns the 2*width product bits. Each row absorbs one partial product in
// carry-save form; a final ripple adder merges the remaining sum and carry
// vectors. The structural critical path runs down the array diagonal and
// through the final carry chain (~2*width full adders), matching the
// classic array-multiplier topology.
func multiplierArray(b *Builder, a, x []Net) []Net {
	w := len(a)
	if len(x) != w {
		panic("netlist: multiplier operand widths differ")
	}
	pp := func(i, j int) Net { return b.Gate(gates.AND2, a[j], x[i]) }
	zero := b.Const(false)
	product := make([]Net, 2*w)

	// Row 0: sum = pp[0], carries = 0. sr[j] has absolute weight i+j after
	// processing row i; cr[j] has absolute weight i+j+1.
	sr := make([]Net, w)
	cr := make([]Net, w)
	for j := 0; j < w; j++ {
		sr[j] = pp(0, j)
		cr[j] = zero
	}
	product[0] = sr[0]

	for i := 1; i < w; i++ {
		nsr := make([]Net, w)
		ncr := make([]Net, w)
		for j := 0; j < w; j++ {
			sIn := zero // sum from previous row, one column to the left
			if j+1 < w {
				sIn = sr[j+1]
			}
			nsr[j], ncr[j] = fullAdder(b, pp(i, j), sIn, cr[j])
		}
		sr, cr = nsr, ncr
		product[i] = sr[0]
	}

	// Vector-merge: remaining sum bits sr[1..w-1] (weights w..2w-2) plus
	// carries cr[0..w-1] (weights w..2w-1). The adder's carry-out is always
	// zero for genuine products, but remains connected for completeness.
	hiA := make([]Net, w)
	copy(hiA, sr[1:])
	hiA[w-1] = zero
	hi, _ := PrefixAdder(b, hiA, cr, zero)
	copy(product[w:], hi)
	return product
}

// NewDivider generates a width-bit restoring array divider: unsigned
// quotient and remainder of a/b. Input buses "a" (dividend), "b" (divisor);
// output buses "q", "r". Division by zero yields q = all-ones and r = a,
// the natural output of the restoring array (every trial subtraction
// "succeeds" against zero).
//
// The array is width rows of a (width+1)-bit subtractor plus a restore mux
// — the other half of the thesis' "ComplexALU (mult/div)" stage. It is not
// wired into NewComplexALU (whose published profiles are multiplier-based)
// but characterised standalone, like the adder-architecture netlists.
func NewDivider(width int) *Netlist {
	b := NewBuilder(fmt.Sprintf("div%d", width))
	a := b.InputBusN("a", width)
	d := b.InputBusN("b", width)
	zero := b.Const(false)
	one := b.Const(true)

	// Extend the divisor to width+1 bits and pre-invert for subtraction.
	nd := make([]Net, width+1)
	for i := 0; i < width; i++ {
		nd[i] = b.Gate(gates.INV, d.Nets[i])
	}
	nd[width] = one // ^0 for the extension bit

	// Running remainder, width+1 bits.
	rem := make([]Net, width+1)
	for i := range rem {
		rem[i] = zero
	}
	q := make([]Net, width)
	for step := width - 1; step >= 0; step-- {
		// Shift in the next dividend bit: rem = (rem << 1) | a[step].
		shifted := make([]Net, width+1)
		shifted[0] = a.Nets[step]
		copy(shifted[1:], rem[:width])
		// Trial subtraction: t = shifted - divisor = shifted + ^divisor + 1.
		t, carries := PrefixAdderCarries(b, shifted, nd, one)
		ok := carries[width+1] // carry-out == no borrow: subtraction fits
		q[step] = b.Gate(gates.BUF, ok)
		// Restore on borrow.
		rem = mux2Bus(b, ok, shifted, t)
	}
	b.OutputBusN("q", q)
	b.OutputBusN("r", rem[:width])
	return b.MustBuild()
}

// NewComplexALU generates the ComplexALU pipe-stage netlist: a width x width
// array multiplier plus a multiply-accumulate path (product low half + c).
// Input buses: "op" (1: 0=MUL, 1=MAC), "a", "b", "c" (width each).
// Output bus: "p" (2*width).
func NewComplexALU(width int) *Netlist {
	b := NewBuilder(fmt.Sprintf("complexalu%d", width))
	op := b.InputBusN("op", 1)
	a := b.InputBusN("a", width)
	x := b.InputBusN("b", width)
	c := b.InputBusN("c", width)
	prod := multiplierArray(b, a.Nets, x.Nets)
	// MAC: add the zero-extended accumulator into the full product with a
	// 2*width prefix adder (a serial carry chain into the high half would
	// create a never-sensitised STA path twice as long as the array's).
	zero := b.Const(false)
	cext := make([]Net, 2*width)
	copy(cext, c.Nets)
	for i := width; i < 2*width; i++ {
		cext[i] = zero
	}
	macOut, _ := PrefixAdder(b, prod, cext, zero)
	out := mux2Bus(b, op.Nets[0], prod, macOut)
	b.OutputBusN("p", out)
	return b.MustBuild()
}
