// Package netlist represents gate-level combinational netlists and provides
// structural generators for the three pipe-stage circuits the thesis
// analyses: Decode, SimpleALU and ComplexALU.
//
// The paper synthesises the Illinois Verilog Model of an Alpha pipeline with
// Synopsys Design Compiler to obtain these netlists. We substitute
// hand-structured generators built from the gates package cell library; the
// circuits implement the same arithmetic (so functional behaviour can be
// verified against Go integer semantics) and exhibit the property the whole
// thesis rests on: the critical path (e.g. the full 32-bit carry chain) is
// rarely sensitised by real operand streams.
package netlist

import (
	"fmt"
	"math/rand"

	"synts/internal/gates"
)

// Net identifies a signal node within a single netlist.
type Net int32

// Gate is one library-cell instance. In holds NumInputs() valid entries.
// Delay is the instance's propagation delay: the library's nominal cell
// delay scaled by this instance's process-variation factor (die-to-die and
// random variation are why timing errors exist in the first place — §1.1).
type Gate struct {
	Kind  gates.Kind
	In    [3]Net
	Out   Net
	Delay float64
}

// Bus is a named, ordered group of nets (bit 0 first).
type Bus struct {
	Name string
	Nets []Net
}

// Netlist is an immutable combinational netlist. Gates are stored in
// topological order (guaranteed by Builder), so a single forward pass
// evaluates the circuit.
type Netlist struct {
	Name    string
	Gates   []Gate
	Inputs  []Net // primary inputs in declaration order
	Outputs []Net // primary outputs in declaration order

	InputBuses  []Bus
	OutputBuses []Bus

	numNets  int
	driver   []int32 // net -> index into Gates, or -1 for a primary input
	inputPos []int32 // net -> position in Inputs, or -1 for internal nets

	// Connectivity precomputed once at Build time for the incremental
	// timing engines (package timing): fanout lists in CSR form and the
	// logic level of every gate. Both are derived data — they add nothing
	// a walk over Gates could not recompute — but the event-driven engine
	// consults them per changed net, so they are built once here instead
	// of once per analyzer.
	fanoutStart []int32 // net -> first index into fanoutGates; len numNets+1
	fanoutGates []int32 // concatenated per-net gate-index lists, ascending
	gateLevel   []int32 // gate -> logic level (primary inputs are level 0)
	maxLevel    int32   // deepest gate level
}

// NumNets returns the total number of signal nodes.
func (n *Netlist) NumNets() int { return n.numNets }

// Driver returns the index of the gate driving net t, or -1 if t is a
// primary input.
func (n *Netlist) Driver(t Net) int { return int(n.driver[t]) }

// Fanout returns the indices of the gates that read net t, in ascending
// (and therefore topological) order. The slice aliases the netlist's
// internal storage and must not be modified.
func (n *Netlist) Fanout(t Net) []int32 {
	return n.fanoutGates[n.fanoutStart[t]:n.fanoutStart[t+1]]
}

// GateLevel returns the logic level of gate gi: 1 + the maximum level of
// its input nets, where primary inputs sit at level 0. Gates on the same
// level never feed each other, which is what lets the event-driven engine
// drain its dirty worklist one level at a time.
func (n *Netlist) GateLevel(gi int) int { return int(n.gateLevel[gi]) }

// NumLevels returns the number of distinct gate levels (deepest level + 1).
func (n *Netlist) NumLevels() int { return int(n.maxLevel) + 1 }

// Area returns the total combinational cell area in INV units.
func (n *Netlist) Area() float64 {
	var a float64
	for _, g := range n.Gates {
		a += g.Kind.Area()
	}
	return a
}

// InputBus returns the input bus with the given name, or panics: the bus
// names of a generated stage are part of its contract.
func (n *Netlist) InputBus(name string) Bus {
	for _, b := range n.InputBuses {
		if b.Name == name {
			return b
		}
	}
	panic(fmt.Sprintf("netlist %s: no input bus %q", n.Name, name))
}

// OutputBus returns the output bus with the given name, or panics.
func (n *Netlist) OutputBus(name string) Bus {
	for _, b := range n.OutputBuses {
		if b.Name == name {
			return b
		}
	}
	panic(fmt.Sprintf("netlist %s: no output bus %q", n.Name, name))
}

// Eval evaluates the netlist for the given primary input assignment.
// vals must either be nil or have length NumNets(); it is (re)used as the
// value store and returned, indexed by Net. Input values are read from in,
// which must match len(Inputs).
func (n *Netlist) Eval(in []bool, vals []bool) []bool {
	if len(in) != len(n.Inputs) {
		panic(fmt.Sprintf("netlist %s: Eval got %d inputs, want %d", n.Name, len(in), len(n.Inputs)))
	}
	if vals == nil || len(vals) != n.numNets {
		vals = make([]bool, n.numNets)
	}
	for i, t := range n.Inputs {
		vals[t] = in[i]
	}
	var pins [3]bool
	for _, g := range n.Gates {
		k := g.Kind.NumInputs()
		for i := 0; i < k; i++ {
			pins[i] = vals[g.In[i]]
		}
		vals[g.Out] = g.Kind.Eval(pins[:k])
	}
	return vals
}

// SetBusUint writes the low len(bus.Nets) bits of v into in (a primary-input
// value slice indexed like Inputs) for the given input bus.
func (n *Netlist) SetBusUint(in []bool, bus Bus, v uint64) {
	for i, t := range bus.Nets {
		in[n.inputPos[t]] = v&(1<<uint(i)) != 0
	}
}

// BusUint reads the value of a bus from a full net-value slice (as returned
// by Eval), LSB first.
func BusUint(vals []bool, bus Bus) uint64 {
	var v uint64
	for i, t := range bus.Nets {
		if vals[t] {
			v |= 1 << uint(i)
		}
	}
	return v
}

// Builder constructs a Netlist. Nets can only be created by Input/InputBusN
// or as gate outputs, so every net has exactly one driver and the gate list
// is topologically ordered by construction.
type Builder struct {
	n        Netlist
	varRng   *rand.Rand
	varSigma float64
}

// NewBuilder returns an empty builder for a netlist with the given name.
// Gate instances receive per-instance process-variation delay factors drawn
// deterministically from the netlist name, with a default sigma of 6%
// (use SetVariation to change or disable).
func NewBuilder(name string) *Builder {
	seed := int64(1)
	for _, c := range name {
		seed = seed*131 + int64(c)
	}
	return &Builder{
		n:        Netlist{Name: name},
		varRng:   rand.New(rand.NewSource(seed)),
		varSigma: 0.06,
	}
}

// SetVariation sets the per-gate delay variation sigma (0 disables it,
// giving every instance the nominal library delay). Call before adding
// gates.
func (b *Builder) SetVariation(sigma float64) {
	if sigma < 0 {
		panic("netlist: negative variation sigma")
	}
	b.varSigma = sigma
}

// instanceDelay draws this instance's delay from the library nominal.
func (b *Builder) instanceDelay(k gates.Kind) float64 {
	d := k.Delay()
	if d == 0 || b.varSigma == 0 {
		return d
	}
	f := 1 + b.varSigma*b.varRng.NormFloat64()
	// Clip to a plausible fast/slow corner range.
	if f < 0.8 {
		f = 0.8
	}
	if f > 1.35 {
		f = 1.35
	}
	return d * f
}

func (b *Builder) newNet() Net {
	t := Net(b.n.numNets)
	b.n.numNets++
	b.n.driver = append(b.n.driver, -1)
	return t
}

// Input declares a single-bit primary input and returns its net.
func (b *Builder) Input(name string) Net {
	bus := b.InputBusN(name, 1)
	return bus.Nets[0]
}

// InputBusN declares a width-bit primary input bus (bit 0 first).
func (b *Builder) InputBusN(name string, width int) Bus {
	bus := Bus{Name: name, Nets: make([]Net, width)}
	for i := range bus.Nets {
		t := b.newNet()
		b.n.Inputs = append(b.n.Inputs, t)
		bus.Nets[i] = t
	}
	b.n.InputBuses = append(b.n.InputBuses, bus)
	return bus
}

// Gate instantiates a cell with the given inputs and returns its output net.
// The inputs must be nets already created by this builder.
func (b *Builder) Gate(k gates.Kind, in ...Net) Net {
	if len(in) != k.NumInputs() {
		panic(fmt.Sprintf("netlist %s: %s takes %d inputs, got %d", b.n.Name, k, k.NumInputs(), len(in)))
	}
	out := b.newNet()
	g := Gate{Kind: k, Out: out, Delay: b.instanceDelay(k)}
	for i, t := range in {
		if t < 0 || int(t) >= b.n.numNets-1 {
			panic(fmt.Sprintf("netlist %s: %s input %d references unknown net %d", b.n.Name, k, i, t))
		}
		g.In[i] = t
	}
	b.n.driver[out] = int32(len(b.n.Gates))
	b.n.Gates = append(b.n.Gates, g)
	return out
}

// Const returns a constant-0 or constant-1 net (a tie cell).
func (b *Builder) Const(v bool) Net {
	if v {
		return b.Gate(gates.CONST1)
	}
	return b.Gate(gates.CONST0)
}

// Output declares a single-bit primary output.
func (b *Builder) Output(name string, t Net) {
	b.OutputBusN(name, []Net{t})
}

// OutputBusN declares a multi-bit primary output bus (bit 0 first).
func (b *Builder) OutputBusN(name string, nets []Net) {
	for i, t := range nets {
		if t < 0 || int(t) >= b.n.numNets {
			panic(fmt.Sprintf("netlist %s: output %s[%d] references unknown net %d", b.n.Name, name, i, t))
		}
	}
	b.n.OutputBuses = append(b.n.OutputBuses, Bus{Name: name, Nets: append([]Net(nil), nets...)})
	b.n.Outputs = append(b.n.Outputs, nets...)
}

// Build finalizes and validates the netlist. After Build the builder must
// not be reused.
func (b *Builder) Build() (*Netlist, error) {
	if len(b.n.Inputs) == 0 {
		return nil, fmt.Errorf("netlist %s: no primary inputs", b.n.Name)
	}
	if len(b.n.Outputs) == 0 {
		return nil, fmt.Errorf("netlist %s: no primary outputs", b.n.Name)
	}
	// Every non-input net must be driven by exactly one gate (guaranteed by
	// construction); verify the invariant anyway so corruption is caught.
	driven := make([]bool, b.n.numNets)
	for i, t := range b.n.Inputs {
		if driven[t] {
			return nil, fmt.Errorf("netlist %s: input %d re-declared", b.n.Name, i)
		}
		driven[t] = true
	}
	for gi, g := range b.n.Gates {
		if driven[g.Out] {
			return nil, fmt.Errorf("netlist %s: net %d driven twice (gate %d)", b.n.Name, g.Out, gi)
		}
		driven[g.Out] = true
	}
	for t := 0; t < b.n.numNets; t++ {
		if !driven[t] {
			return nil, fmt.Errorf("netlist %s: net %d has no driver", b.n.Name, t)
		}
	}
	b.n.precomputeConnectivity()
	out := b.n
	b.n = Netlist{} // poison further use
	return &out, nil
}

// precomputeConnectivity fills the CSR fanout lists and gate levels. Gates
// are visited in topological order, so per-net fanout lists come out in
// ascending gate-index order and each gate's input levels are already final
// when its own level is computed.
func (n *Netlist) precomputeConnectivity() {
	n.inputPos = make([]int32, n.numNets)
	for i := range n.inputPos {
		n.inputPos[i] = -1
	}
	for i, t := range n.Inputs {
		n.inputPos[t] = int32(i)
	}
	counts := make([]int32, n.numNets+1)
	for _, g := range n.Gates {
		for i := 0; i < g.Kind.NumInputs(); i++ {
			counts[g.In[i]+1]++
		}
	}
	n.fanoutStart = counts
	for t := 1; t <= n.numNets; t++ {
		n.fanoutStart[t] += n.fanoutStart[t-1]
	}
	n.fanoutGates = make([]int32, n.fanoutStart[n.numNets])
	next := make([]int32, n.numNets)
	copy(next, n.fanoutStart[:n.numNets])
	for gi, g := range n.Gates {
		for i := 0; i < g.Kind.NumInputs(); i++ {
			t := g.In[i]
			n.fanoutGates[next[t]] = int32(gi)
			next[t]++
		}
	}

	netLevel := make([]int32, n.numNets) // primary inputs stay 0
	n.gateLevel = make([]int32, len(n.Gates))
	for gi, g := range n.Gates {
		var worst int32
		for i := 0; i < g.Kind.NumInputs(); i++ {
			if l := netLevel[g.In[i]]; l > worst {
				worst = l
			}
		}
		lvl := worst + 1
		n.gateLevel[gi] = lvl
		netLevel[g.Out] = lvl
		if lvl > n.maxLevel {
			n.maxLevel = lvl
		}
	}
}

// MustBuild is Build but panics on error; for the static stage generators
// whose correctness is covered by tests.
func (b *Builder) MustBuild() *Netlist {
	n, err := b.Build()
	if err != nil {
		panic(err)
	}
	return n
}
