package razor

import (
	"fmt"

	"synts/internal/isa"
	"synts/internal/simprof"
	"synts/internal/trace"
)

// Joint multi-stage analysis. The thesis characterises Decode, SimpleALU
// and ComplexALU independently ("the analysis is performed for" each pipe
// stage); in a real Razor pipeline every in-flight instruction can be
// flagged by any stage's shadow latch, so the per-instruction error
// probability composes across stages. This file quantifies that
// composition: JointReplay counts an error whenever *any* stage's
// sensitized delay exceeds its own speculative period, which is exact
// (per-instruction correlation included), and IndependentUpperBound gives
// the p = 1 - prod(1 - p_s) approximation a per-stage analysis would
// predict under independence.

// JointResult reports the composed error behaviour of one window.
type JointResult struct {
	Instructions int
	Errors       int     // instructions flagged by at least one stage
	StageErrors  []int   // per-stage flag counts (an instruction can appear in several)
	Independent  float64 // 1 - prod(1 - p_stage): the independence prediction
}

// ErrorRate returns the exact joint per-instruction error probability.
func (r JointResult) ErrorRate() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return float64(r.Errors) / float64(r.Instructions)
}

// JointReplay composes the per-stage delay traces of the *same* instruction
// window at TSR r. All profiles must describe the same window (equal N, in
// program order); each stage uses its own TCrit.
func JointReplay(profiles []*trace.Profile, r float64) (JointResult, error) {
	return JointReplayScoped("", nil, profiles, r)
}

// JointReplayScoped is JointReplay with simprof attribution: per-stage,
// per-opcode shadow-latch flag counts land under phase "joint" for the
// given kernel (stageNames aligned with profiles). Cycles and energy are
// zero — the joint study counts flags, it does not model recovery — so
// these buckets appear in the pprof replay_errors view but are dropped
// from the cycle-weighted folded output. With kernel == "", a nil
// stageNames or the profiler disabled, it is exactly JointReplay.
func JointReplayScoped(kernel string, stageNames []string, profiles []*trace.Profile, r float64) (JointResult, error) {
	if len(profiles) == 0 {
		return JointResult{}, fmt.Errorf("razor: no stage profiles")
	}
	n := len(profiles[0].Delays)
	for _, p := range profiles[1:] {
		if len(p.Delays) != n {
			return JointResult{}, fmt.Errorf("razor: stage windows differ in length: %d vs %d", len(p.Delays), n)
		}
	}
	attr := kernel != "" && simprof.Enabled() && len(stageNames) == len(profiles)
	for _, p := range profiles {
		if len(p.Ops) != n {
			attr = false
		}
	}
	var flags, instrs [][isa.NumOps]int64
	if attr {
		flags = make([][isa.NumOps]int64, len(profiles))
		instrs = make([][isa.NumOps]int64, len(profiles))
	}
	res := JointResult{Instructions: n, StageErrors: make([]int, len(profiles))}
	for i := 0; i < n; i++ {
		flagged := false
		for s, p := range profiles {
			if p.Delays[i] > r*p.TCrit {
				res.StageErrors[s]++
				flagged = true
				if attr {
					flags[s][p.Ops[i]]++
				}
			}
			if attr {
				instrs[s][p.Ops[i]]++
			}
		}
		if flagged {
			res.Errors++
		}
	}
	if attr {
		for s, p := range profiles {
			for op := 0; op < isa.NumOps; op++ {
				if flags[s][op] == 0 {
					continue
				}
				simprof.Record(
					simprof.Key{Kernel: kernel, Core: p.Thread, Interval: p.Interval, Phase: simprof.PhaseJoint, Op: isa.Op(op).String(), Stage: stageNames[s]},
					simprof.Values{Errors: flags[s][op], Instrs: instrs[s][op]},
				)
			}
		}
	}
	// Independence prediction from the same window's marginals.
	ind := 1.0
	for s := range profiles {
		ps := float64(res.StageErrors[s]) / float64(maxIntJ(n, 1))
		ind *= 1 - ps
	}
	res.Independent = 1 - ind
	return res, nil
}

func maxIntJ(a, b int) int {
	if a > b {
		return a
	}
	return b
}
