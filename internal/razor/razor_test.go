package razor

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"synts/internal/cpu"
	"synts/internal/simprof"
	"synts/internal/telemetry"
	"synts/internal/trace"
	"synts/internal/workload"
)

func TestReplayCountsErrors(t *testing.T) {
	delays := []float64{10, 50, 90, 130}
	res := Replay(delays, 100, 5)
	if res.Instructions != 4 {
		t.Fatalf("instructions = %d", res.Instructions)
	}
	if res.Errors != 1 {
		t.Fatalf("errors = %d, want 1 (only the 130 delay)", res.Errors)
	}
	if res.Cycles != 4+5 {
		t.Fatalf("cycles = %v, want 9", res.Cycles)
	}
	if got := res.ErrorRate(); got != 0.25 {
		t.Fatalf("error rate = %v", got)
	}
}

func TestReplayBoundaryIsSafe(t *testing.T) {
	// A delay exactly equal to the clock period latches correctly.
	res := Replay([]float64{100}, 100, 5)
	if res.Errors != 0 {
		t.Fatal("delay == tclk must not be an error")
	}
}

func TestReplayEmptyAndPanics(t *testing.T) {
	if r := Replay(nil, 100, 5); r.Cycles != 0 || r.ErrorRate() != 0 {
		t.Fatal("empty replay must be all zeros")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive tclk did not panic")
		}
	}()
	Replay([]float64{1}, 0, 5)
}

// The load-bearing consistency check: the replay's observed error rate at
// ratio r equals Profile.Err(r) exactly (both count delays > r*TCrit), so
// the analytic Eq. 4.1 cycles match the cycle-level simulation exactly.
func TestReplayMatchesAnalyticSPI(t *testing.T) {
	k, err := workload.ByName("radix")
	if err != nil {
		t.Fatal(err)
	}
	streams := workload.RunKernel(k, 4, 1, 9)
	profs, err := trace.BuildProfiles(streams, trace.SimpleALU, cpu.DefaultL1())
	if err != nil {
		t.Fatal(err)
	}
	for _, ths := range profs {
		for _, p := range ths {
			for _, r := range []float64{0.64, 0.8, 0.95, 1.0} {
				res, analytic := ReplayProfile(p, r, 5)
				if math.Abs(res.Cycles-analytic) > 1e-6*math.Max(analytic, 1) {
					t.Fatalf("thread %d interval %d r=%v: replay %v cycles, Eq 4.1 %v",
						p.Thread, p.Interval, r, res.Cycles, analytic)
				}
				if got, want := res.ErrorRate(), p.Err(r); math.Abs(got-want) > 1e-12 {
					t.Fatalf("error rate %v != Err(%v) = %v", got, r, want)
				}
			}
		}
	}
}

func syntheticProfile(rng *rand.Rand, n int, tcrit float64) *trace.Profile {
	delays := make([]float64, n)
	for i := range delays {
		delays[i] = rng.Float64() * tcrit
	}
	sorted := append([]float64(nil), delays...)
	sort.Float64s(sorted)
	return &trace.Profile{N: n, CPIBase: 1, TCrit: tcrit, Delays: delays, SortedDelays: sorted}
}

func TestSamplingEstimatorConvergesToTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// Uniform delays: Err(r) = 1 - r, an easy truth to estimate.
	p := syntheticProfile(rng, 60000, 100)
	tsrs := []float64{0.64, 0.8, 1.0}
	est := SamplingEstimator([]*trace.Profile{p}, tsrs, 60000, 5)
	for k, r := range tsrs {
		got := est(0, k)
		want := 1 - r
		if math.Abs(got-want) > 0.02 {
			t.Errorf("estimated err at r=%v is %v, want ~%v", r, got, want)
		}
	}
}

func TestSamplingEstimatorUsesOnlyPrefix(t *testing.T) {
	// First half of the trace error-free, second half always erring at
	// r<1. Sampling only the first half must report ~0.
	n := 1000
	delays := make([]float64, n)
	for i := n / 2; i < n; i++ {
		delays[i] = 99
	}
	sorted := append([]float64(nil), delays...)
	sort.Float64s(sorted)
	p := &trace.Profile{N: n, CPIBase: 1, TCrit: 100, Delays: delays, SortedDelays: sorted}
	est := SamplingEstimator([]*trace.Profile{p}, []float64{0.5, 1.0}, n/2, 5)
	if got := est(0, 0); got != 0 {
		t.Fatalf("prefix-only sampling must see no errors, got %v", got)
	}
}

func TestSamplingEstimatorShortInterval(t *testing.T) {
	// NSamp larger than the interval: clamp, don't panic.
	rng := rand.New(rand.NewSource(6))
	p := syntheticProfile(rng, 30, 100)
	est := SamplingEstimator([]*trace.Profile{p}, []float64{0.5, 0.75, 1.0}, 1000, 5)
	for k := 0; k < 3; k++ {
		if r := est(0, k); r < 0 || r > 1 {
			t.Fatalf("rate out of range: %v", r)
		}
	}
}

func TestPerfectEstimator(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := syntheticProfile(rng, 1000, 100)
	tsrs := []float64{0.7, 1.0}
	est := PerfectEstimator([]*trace.Profile{p}, tsrs)
	for k, r := range tsrs {
		if est(0, k) != p.Err(r) {
			t.Fatalf("perfect estimator must equal Err")
		}
	}
}

// Property: the sampling estimate is within a few points of the full-trace
// truth for statistically stationary delay streams, and always identifies
// the more error-prone of two threads (the "critical thread is always
// identified" claim of §6.2).
func TestSamplingIdentifiesCriticalThread(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		hot := syntheticProfile(rng, 8000, 100)
		cold := syntheticProfile(rng, 8000, 100)
		// Scale down the cold thread's delays so it errs less.
		for i := range cold.Delays {
			cold.Delays[i] *= 0.5
		}
		copy(cold.SortedDelays, cold.Delays)
		sort.Float64s(cold.SortedDelays)
		tsrs := []float64{0.64, 0.8, 1.0}
		est := SamplingEstimator([]*trace.Profile{hot, cold}, tsrs, 800, 5)
		if est(0, 0) <= est(1, 0) {
			t.Fatalf("trial %d: sampling failed to identify the critical thread", trial)
		}
	}
}

// TestErrorRateNaNFree pins the degenerate-denominator contract for both
// replay result types: an empty window must read as a 0.0 error rate, not
// NaN, because these rates feed straight into energy models and the
// telemetry ledger where NaN would poison every downstream aggregate.
func TestErrorRateNaNFree(t *testing.T) {
	cases := []struct {
		name string
		rate float64
		want float64
	}{
		{"empty Result", Result{}.ErrorRate(), 0},
		{"empty JointResult", JointResult{}.ErrorRate(), 0},
		{"half errors", Result{Instructions: 4, Errors: 2}.ErrorRate(), 0.5},
		{"joint half errors", JointResult{Instructions: 4, Errors: 2}.ErrorRate(), 0.5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if math.IsNaN(tc.rate) {
				t.Fatal("ErrorRate() = NaN")
			}
			if tc.rate != tc.want {
				t.Fatalf("ErrorRate() = %v, want %v", tc.rate, tc.want)
			}
		})
	}
}

// The reconciliation invariant behind `obscheck -simprof`: with the
// profiler and ledger both recording, a scoped replay's per-op
// attribution must sum exactly to the replay event it emits — errors
// exactly, cycles (per-op latch cycles + replay penalties + the "(stall)"
// frame) exactly — and the Result must be bit-identical to the
// profiler-off replay.
func TestReplayProfileScopedSimprofReconciles(t *testing.T) {
	k, err := workload.ByName("radix")
	if err != nil {
		t.Fatal(err)
	}
	streams := workload.RunKernel(k, 2, 1, 2016)
	profs, err := trace.BuildProfiles(streams, trace.SimpleALU, cpu.DefaultL1())
	if err != nil {
		t.Fatal(err)
	}
	p := profs[0][0]
	const r, cPenalty = 0.55, 5.0
	sc := telemetry.Scope{Bench: "radix", Stage: "SimpleALU"}

	simprof.Disable()
	telemetry.Disable()
	refRes, refAn := ReplayProfile(p, r, cPenalty)

	simprof.Enable()
	defer simprof.Disable()
	telemetry.Enable()
	defer telemetry.Disable()
	res, an := ReplayProfileScoped(sc, "SynTS", p, r, cPenalty)
	if res != refRes || an != refAn {
		t.Fatalf("attribution perturbed the replay: %+v / %v, want %+v / %v", res, an, refRes, refAn)
	}
	if res.Errors == 0 {
		t.Fatal("fixture replay produced no errors; pick a more aggressive r")
	}

	var errSum int64
	var cycSum float64
	for _, e := range simprof.Snapshot() {
		if e.Kernel != "radix" || e.Phase != simprof.PhaseReplay {
			t.Fatalf("unexpected attribution entry %+v", e)
		}
		if e.Core != p.Thread || e.Interval != p.Interval || e.Stage != "SimpleALU" {
			t.Fatalf("entry attributed to wrong coordinates: %+v", e)
		}
		errSum += e.Errors
		cycSum += e.Cycles
	}
	if errSum != int64(res.Errors) {
		t.Errorf("profiler errors = %d, replay errors = %d", errSum, res.Errors)
	}
	if math.Abs(cycSum-res.Cycles) > 1e-9*math.Abs(res.Cycles) {
		t.Errorf("profiler cycles = %v, replay cycles = %v", cycSum, res.Cycles)
	}

	evs := telemetry.Events()
	if len(evs) != 1 || evs[0].Kind != telemetry.KindReplay {
		t.Fatalf("expected exactly one replay event, got %+v", evs)
	}
	if got := int64(evs[0].Replays); got != errSum {
		t.Errorf("ledger replays = %d, profiler errors = %d", got, errSum)
	}
	if math.Abs(evs[0].Cycles-cycSum) > 1e-9*math.Abs(cycSum) {
		t.Errorf("ledger cycles = %v, profiler cycles = %v", evs[0].Cycles, cycSum)
	}
}
