// Package razor models the error detection and recovery machinery that
// makes timing speculation safe: Razor-style shadow-latch flip-flops whose
// comparator flags any pipe-stage output still switching at the clock edge,
// triggering a C_penalty-cycle pipeline replay (Fig 1.1, [1][6]).
//
// Two roles in the reproduction:
//
//   - Replay is the cycle-level reference simulation used to validate the
//     analytic SPI model of Eq. 4.1 (the solvers use the equation; this
//     package shows the equation matches a faithful replay).
//   - SamplingEstimator implements the online sampling phase (§4.3): the
//     first N_samp instructions of a barrier interval run in S slots, one
//     per TSR level, and the per-slot Razor error counts become the
//     estimated error probability function fed to SynTS-Poly.
package razor

import (
	"fmt"
	"math"

	"synts/internal/core"
	"synts/internal/faults"
	"synts/internal/isa"
	"synts/internal/simprof"
	"synts/internal/telemetry"
	"synts/internal/trace"
)

// Result summarises a cycle-level replay.
type Result struct {
	Instructions int
	Errors       int
	Cycles       float64 // issue cycles + recovery cycles (excludes memory stalls)
}

// ErrorRate returns the per-instruction timing-error probability observed.
func (r Result) ErrorRate() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return float64(r.Errors) / float64(r.Instructions)
}

// Replay runs a window of per-instruction sensitized delays through a
// Razor pipeline clocked at tclk (same units as the delays, i.e. the
// speculative period r * TCrit at the reference voltage). Each instruction
// issues in one cycle; an instruction whose stage output settles after the
// clock edge is caught by the shadow latch and costs cPenalty extra cycles.
func Replay(delays []float64, tclk float64, cPenalty float64) Result {
	return replayAttr(delays, nil, tclk, cPenalty, nil)
}

// opAccum collects one replay site's per-opcode attribution before it is
// flushed to simprof in a handful of Record calls — the hot loop never
// touches the profiler's lock. A nil *opAccum disables attribution; the
// Result is identical either way because Replay and every scoped variant
// share this one loop.
type opAccum struct {
	cycles [isa.NumOps]float64
	errors [isa.NumOps]int64
	instrs [isa.NumOps]int64
	// Errors injected by the chaos harness have no single opcode; they
	// land under the synthetic "(chaos)" frame.
	chaosErr int64
	chaosCyc float64
}

// replayAttr is the one Razor replay loop. ops (aligned with delays) is
// consulted only when acc is non-nil.
func replayAttr(delays []float64, ops []isa.Op, tclk float64, cPenalty float64, acc *opAccum) Result {
	if tclk <= 0 {
		panic(fmt.Sprintf("razor: non-positive clock period %v", tclk))
	}
	if acc != nil && len(ops) != len(delays) {
		panic(fmt.Sprintf("razor: %d ops for %d delays", len(ops), len(delays)))
	}
	res := Result{Instructions: len(delays)}
	for i, d := range delays {
		res.Cycles++
		erred := d > tclk
		if erred {
			res.Errors++
			res.Cycles += cPenalty
		}
		if acc != nil {
			op := ops[i]
			acc.instrs[op]++
			if erred {
				acc.errors[op]++
				acc.cycles[op] += 1 + cPenalty
			} else {
				acc.cycles[op]++
			}
		}
	}
	if faults.Enabled() {
		// Chaos harness: a flaky shadow-latch comparator over-reports
		// errors; the extra replays cost their recovery cycles too.
		if e := faults.ReplayErrors(res.Errors, res.Instructions, math.Float64bits(tclk)); e != res.Errors {
			extra := e - res.Errors
			res.Cycles += float64(extra) * cPenalty
			res.Errors = e
			if acc != nil {
				acc.chaosErr += int64(extra)
				acc.chaosCyc += float64(extra) * cPenalty
			}
		}
	}
	return res
}

// flush records the accumulated attribution under one (kernel, core,
// interval, stage, phase) scope, one bucket per opcode seen. Cycle
// energy uses the per-replay-cycle constant (V = V_nom).
func (a *opAccum) flush(kernel, stage, phase string, coreID, interval int) {
	for op := 0; op < isa.NumOps; op++ {
		if a.instrs[op] == 0 {
			continue
		}
		simprof.Record(
			simprof.Key{Kernel: kernel, Core: coreID, Interval: interval, Phase: phase, Op: isa.Op(op).String(), Stage: stage},
			simprof.Values{
				Cycles: a.cycles[op],
				Errors: a.errors[op],
				Energy: a.cycles[op] * simprof.EnergyPerReplayCyclePJ,
				Instrs: a.instrs[op],
			},
		)
	}
	if a.chaosErr > 0 {
		simprof.Record(
			simprof.Key{Kernel: kernel, Core: coreID, Interval: interval, Phase: phase, Op: simprof.OpChaos, Stage: stage},
			simprof.Values{
				Cycles: a.chaosCyc,
				Errors: a.chaosErr,
				Energy: a.chaosCyc * simprof.EnergyPerReplayCyclePJ,
			},
		)
	}
}

// ReplayProfile replays one thread's whole interval at TSR r and returns
// both the observed result and the analytic cycles from Eq. 4.1 for
// comparison (base CPI added in both).
func ReplayProfile(p *trace.Profile, r float64, cPenalty float64) (Result, float64) {
	res := Replay(p.Delays, r*p.TCrit, cPenalty)
	// Memory-stall cycles from the cache model apply identically in both.
	stall := (p.CPIBase - 1) * float64(p.N)
	res.Cycles += stall
	analytic := float64(p.N) * (p.Err(r)*cPenalty + p.CPIBase)
	return res, analytic
}

// ReplayProfileScoped is ReplayProfile with ledger attribution: when the
// telemetry ledger is recording and the scope is non-zero, the replay's
// observed error count, cycle cost and Eq. 4.1 analytic cycles are
// recorded as one replay event. Unscoped callers (ablations, tests) use
// ReplayProfile and stay ledger-silent.
// When the simprof profiler is enabled (and the scope non-zero), the
// same replay also attributes per-opcode cycles and errors under phase
// "replay", with the CPI-base stall cycles under the synthetic
// "(stall)" frame — so the profiler's per-(kernel, stage) replay totals
// reconcile exactly with the ledger's replay events (obscheck -simprof
// cross-checks this).
func ReplayProfileScoped(sc telemetry.Scope, solver string, p *trace.Profile, r float64, cPenalty float64) (Result, float64) {
	var acc *opAccum
	if simprof.Enabled() && !sc.Zero() && len(p.Ops) == len(p.Delays) {
		acc = &opAccum{}
	}
	res := replayAttr(p.Delays, p.Ops, r*p.TCrit, cPenalty, acc)
	// Memory-stall cycles from the cache model apply identically in both.
	stall := (p.CPIBase - 1) * float64(p.N)
	res.Cycles += stall
	analytic := float64(p.N) * (p.Err(r)*cPenalty + p.CPIBase)
	if acc != nil {
		acc.flush(sc.Bench, sc.Stage, simprof.PhaseReplay, p.Thread, p.Interval)
		if stall != 0 {
			simprof.Record(
				simprof.Key{Kernel: sc.Bench, Core: p.Thread, Interval: p.Interval, Phase: simprof.PhaseReplay, Op: simprof.OpStall, Stage: sc.Stage},
				simprof.Values{Cycles: stall, Energy: stall * simprof.EnergyPerStallCyclePJ},
			)
		}
	}
	if telemetry.Enabled() && !sc.Zero() {
		telemetry.Record(telemetry.Event{
			Kind:           telemetry.KindReplay,
			Bench:          sc.Bench,
			Stage:          sc.Stage,
			Solver:         solver,
			Interval:       p.Interval,
			Core:           p.Thread,
			TSR:            r,
			ActErr:         res.ErrorRate(),
			Replays:        float64(res.Errors),
			Instrs:         float64(res.Instructions),
			Cycles:         res.Cycles,
			AnalyticCycles: analytic,
			IntervalCycles: float64(p.N) * p.CPIBase,
		})
	}
	return res, analytic
}

// SamplingGranule is the number of consecutive instructions executed at one
// TSR level before the sampling controller rotates to the next. The paper
// assigns each level N_samp/S instructions; interleaving them as short
// granules spread across the whole sampling window (instead of S long
// contiguous slots) keeps every level's estimate aligned with the same mix
// of loop phases — contiguous slots alias against loop periods at small
// N_samp. A clock divider off the shared fast PLL switches ratios at
// granule boundaries.
const SamplingGranule = 8

// SamplingEstimator builds a core.ErrEstimator over one barrier interval's
// per-thread profiles. Thread i's first min(nSamp, N) instructions are
// split evenly across the TSR levels (Fig 4.7), rotating level every
// SamplingGranule instructions; level k's error counter replays at tsrs[k].
// The per-level rates are made monotone (non-increasing in r) by pooling,
// since sampling noise can otherwise invert neighbouring levels.
func SamplingEstimator(profiles []*trace.Profile, tsrs []float64, nSamp int, cPenalty float64) core.ErrEstimator {
	return SamplingEstimatorGranule(profiles, tsrs, nSamp, cPenalty, SamplingGranule)
}

// SamplingEstimatorGranule is SamplingEstimator with an explicit rotation
// granule, used by the granularity ablation: granule >= nSamp degenerates
// to the contiguous-slot schedule of Fig 4.7.
func SamplingEstimatorGranule(profiles []*trace.Profile, tsrs []float64, nSamp int, cPenalty float64, granule int) core.ErrEstimator {
	budgets := make([]int, len(profiles))
	for i := range budgets {
		budgets[i] = nSamp
	}
	return SamplingEstimatorBudgets(profiles, tsrs, budgets, cPenalty, granule)
}

// SamplingEstimatorBudgets is the general form with a per-thread sampling
// budget. With strongly imbalanced barrier intervals (a panel-owner thread
// executing 100x the instructions of its siblings) a single N_samp either
// starves the big threads' estimates or over-samples the small ones; the
// per-thread-fraction policy the experiment drivers use passes
// budgets[i] = frac * N_i here.
func SamplingEstimatorBudgets(profiles []*trace.Profile, tsrs []float64, budgets []int, cPenalty float64, granule int) core.ErrEstimator {
	stats := samplingStats(profiles, tsrs, budgets, cPenalty, granule)
	return func(thread, rIdx int) float64 {
		return faults.Estimate(thread, rIdx, stats[thread].Rates[rIdx])
	}
}

// SamplingEstimatorScoped is SamplingEstimatorBudgets with ledger
// attribution: when the telemetry ledger is recording and the scope is
// non-zero, each (thread, TSR level) measurement is recorded as one
// estimate event carrying the pooled estimate, the full-trace truth, the
// instructions sampled at the level and the cycle cost of sampling them —
// the raw material of the §6.3 overhead fraction and the Fig 6.17
// divergence analysis. The returned estimator is identical to the
// unscoped one. When the simprof profiler is enabled, the sampling
// replays are additionally attributed per opcode under phase "sampling".
func SamplingEstimatorScoped(sc telemetry.Scope, profiles []*trace.Profile, tsrs []float64, budgets []int, cPenalty float64, granule int) core.ErrEstimator {
	stats := samplingStatsScoped(sc, profiles, tsrs, budgets, cPenalty, granule)
	if telemetry.Enabled() && !sc.Zero() {
		for i, p := range profiles {
			st := stats[i]
			for k, r := range tsrs {
				telemetry.Record(telemetry.Event{
					Kind:           telemetry.KindEstimate,
					Bench:          sc.Bench,
					Stage:          sc.Stage,
					Interval:       p.Interval,
					Core:           p.Thread,
					TSR:            r,
					EstErr:         st.Rates[k],
					ActErr:         p.Err(r),
					Replays:        float64(st.Errs[k]),
					Instrs:         float64(p.N),
					SampleBudget:   float64(st.Counts[k]),
					SampleCycles:   st.Cycles[k],
					IntervalCycles: float64(p.N) * p.CPIBase,
				})
			}
		}
	}
	return func(thread, rIdx int) float64 {
		return faults.Estimate(thread, rIdx, stats[thread].Rates[rIdx])
	}
}

// threadSampling holds one thread's sampling-phase measurements, indexed
// by TSR level: the isotonic-pooled rate estimates, raw error and
// instruction counts, and the replayed cycle cost at each level.
type threadSampling struct {
	Rates  []float64
	Errs   []int
	Counts []int
	Cycles []float64
}

// samplingStats runs the Fig 4.7 sampling schedule over every profile and
// returns the per-thread, per-level measurements shared by the estimator
// constructors.
func samplingStats(profiles []*trace.Profile, tsrs []float64, budgets []int, cPenalty float64, granule int) []threadSampling {
	return samplingStatsScoped(telemetry.Scope{}, profiles, tsrs, budgets, cPenalty, granule)
}

// samplingStatsScoped is samplingStats with optional simprof attribution
// (phase "sampling", all TSR levels merged per opcode). The returned
// measurements never depend on whether attribution ran.
func samplingStatsScoped(sc telemetry.Scope, profiles []*trace.Profile, tsrs []float64, budgets []int, cPenalty float64, granule int) []threadSampling {
	if len(budgets) != len(profiles) {
		panic(fmt.Sprintf("razor: %d budgets for %d profiles", len(budgets), len(profiles)))
	}
	if granule <= 0 {
		panic("razor: non-positive sampling granule")
	}
	s := len(tsrs)
	if s == 0 {
		panic("razor: no TSR levels to sample")
	}
	// Precompute all rates so the estimator closure is cheap and pure.
	stats := make([]threadSampling, len(profiles))
	for i, p := range profiles {
		st := threadSampling{
			Rates:  make([]float64, s),
			Errs:   make([]int, s),
			Counts: make([]int, s),
			Cycles: make([]float64, s),
		}
		n := budgets[i]
		if n < 0 {
			panic("razor: negative sampling budget")
		}
		if n > len(p.Delays) {
			n = len(p.Delays)
		}
		var acc *opAccum
		if simprof.Enabled() && !sc.Zero() && len(p.Ops) == len(p.Delays) {
			acc = &opAccum{}
		}
		for g := 0; g*granule < n; g++ {
			k := g % s
			lo := g * granule
			hi := lo + granule
			if hi > n {
				hi = n
			}
			var ops []isa.Op
			if acc != nil {
				ops = p.Ops[lo:hi]
			}
			res := replayAttr(p.Delays[lo:hi], ops, tsrs[k]*p.TCrit, cPenalty, acc)
			st.Errs[k] += res.Errors
			st.Counts[k] += res.Instructions
			st.Cycles[k] += res.Cycles
		}
		if acc != nil {
			acc.flush(sc.Bench, sc.Stage, simprof.PhaseSampling, p.Thread, p.Interval)
		}
		for k := 0; k < s; k++ {
			if st.Counts[k] > 0 {
				st.Rates[k] = float64(st.Errs[k]) / float64(st.Counts[k])
			}
		}
		// Isotonic pooling: error probability cannot increase with r.
		for k := s - 2; k >= 0; k-- {
			if st.Rates[k] < st.Rates[k+1] {
				st.Rates[k] = st.Rates[k+1]
			}
		}
		stats[i] = st
	}
	return stats
}

// PerfectEstimator returns an estimator that reports the true error
// probabilities — the offline oracle, used to isolate estimation error from
// sampling-phase overhead in the online evaluation.
func PerfectEstimator(profiles []*trace.Profile, tsrs []float64) core.ErrEstimator {
	return func(thread, rIdx int) float64 {
		return profiles[thread].Err(tsrs[rIdx])
	}
}
