package razor

import (
	"math"
	"testing"

	"synts/internal/cpu"
	"synts/internal/trace"
	"synts/internal/workload"
)

func jointProfiles(t *testing.T) []*trace.Profile {
	t.Helper()
	k, err := workload.ByName("radix")
	if err != nil {
		t.Fatal(err)
	}
	streams := workload.RunKernel(k, 4, 1, 11)
	out := make([]*trace.Profile, 0, 3)
	for _, st := range trace.Stages() {
		profs, err := trace.BuildProfiles(streams, st, cpu.DefaultL1())
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, profs[0][0]) // thread 0, interval 0: same window per stage
	}
	return out
}

func TestJointReplayBounds(t *testing.T) {
	ps := jointProfiles(t)
	for _, r := range []float64{0.64, 0.784, 0.928, 1.0} {
		res, err := JointReplay(ps, r)
		if err != nil {
			t.Fatal(err)
		}
		joint := res.ErrorRate()
		// Joint rate is at least each stage's marginal and at most their sum.
		var sum, maxMarg float64
		for s := range ps {
			m := float64(res.StageErrors[s]) / float64(res.Instructions)
			sum += m
			if m > maxMarg {
				maxMarg = m
			}
		}
		if joint < maxMarg-1e-12 {
			t.Fatalf("r=%v: joint %v below max marginal %v", r, joint, maxMarg)
		}
		if joint > sum+1e-12 {
			t.Fatalf("r=%v: joint %v above union bound %v", r, joint, sum)
		}
		// At r=1 nothing errs anywhere.
		if r == 1.0 && joint != 0 {
			t.Fatalf("joint err at r=1 is %v", joint)
		}
	}
}

func TestJointVsIndependence(t *testing.T) {
	ps := jointProfiles(t)
	res, err := JointReplay(ps, 0.64)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors == 0 {
		t.Skip("no errors at this scale")
	}
	// The independence prediction must be a sane probability near the
	// exact joint rate; per-instruction correlation across stages makes
	// them differ, which is the point of the analysis.
	if res.Independent < 0 || res.Independent > 1 {
		t.Fatalf("independence prediction %v out of range", res.Independent)
	}
	rel := math.Abs(res.Independent-res.ErrorRate()) / res.ErrorRate()
	if rel > 1.0 {
		t.Errorf("independence prediction %v implausibly far from joint %v", res.Independent, res.ErrorRate())
	}
}

func TestJointReplayValidation(t *testing.T) {
	if _, err := JointReplay(nil, 0.8); err == nil {
		t.Error("empty profile set accepted")
	}
	a := &trace.Profile{Delays: make([]float64, 5), TCrit: 1}
	b := &trace.Profile{Delays: make([]float64, 6), TCrit: 1}
	if _, err := JointReplay([]*trace.Profile{a, b}, 0.8); err == nil {
		t.Error("mismatched windows accepted")
	}
}
