// Package gates defines the combinational gate library used to build the
// pipe-stage netlists that SynTS analyses.
//
// The paper obtains per-gate propagation delays from HSPICE simulations of
// the 22 nm Predictive Technology Model. This package substitutes a static
// standard-cell library with intrinsic delays (in picoseconds) and areas
// (in normalized cell units) whose ratios are representative of a deep
// sub-micron node: an inverter is the fastest cell, XOR-class cells cost
// roughly two inverter delays, and series-stacked cells (NAND3/NOR3) sit in
// between. Only the *relative* delays of sensitized paths matter to the
// error-probability functions err(r), because the timing-speculation ratio r
// normalizes against the critical path of the same netlist.
package gates

import "fmt"

// Kind identifies a gate type in the library.
type Kind uint8

// Gate kinds. BUF is a unit-delay buffer used for fanout/staging; CONST0 and
// CONST1 are tie cells with zero delay.
const (
	CONST0 Kind = iota
	CONST1
	BUF
	INV
	AND2
	OR2
	NAND2
	NOR2
	XOR2
	XNOR2
	NAND3
	NOR3
	AND3
	OR3
	MUX2 // inputs: sel, a, b; output = a if sel==0 else b
	AOI21
	OAI21
	numKinds
)

var kindNames = [numKinds]string{
	"CONST0", "CONST1", "BUF", "INV", "AND2", "OR2", "NAND2", "NOR2",
	"XOR2", "XNOR2", "NAND3", "NOR3", "AND3", "OR3", "MUX2", "AOI21", "OAI21",
}

// String returns the library name of the gate kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// NumInputs returns how many input pins the gate kind has.
func (k Kind) NumInputs() int {
	switch k {
	case CONST0, CONST1:
		return 0
	case BUF, INV:
		return 1
	case AND2, OR2, NAND2, NOR2, XOR2, XNOR2:
		return 2
	case NAND3, NOR3, AND3, OR3, MUX2, AOI21, OAI21:
		return 3
	default:
		panic("gates: unknown kind " + k.String())
	}
}

// Delay returns the intrinsic propagation delay of the gate in picoseconds
// at the nominal voltage. Voltage scaling is applied uniformly by the vscale
// package, so one number per cell suffices.
func (k Kind) Delay() float64 {
	switch k {
	case CONST0, CONST1:
		return 0
	case BUF:
		return 9
	case INV:
		return 7
	case NAND2:
		return 10
	case NOR2:
		return 12
	case AND2:
		return 13 // NAND2 + INV
	case OR2:
		return 15 // NOR2 + INV
	case XOR2, XNOR2:
		return 19
	case NAND3:
		return 13
	case NOR3:
		return 16
	case AND3:
		return 16
	case OR3:
		return 19
	case MUX2:
		return 17
	case AOI21, OAI21:
		return 14
	default:
		panic("gates: unknown kind " + k.String())
	}
}

// Area returns the cell area in normalized units (INV == 1). Used by the
// SynTS overhead model (§6.3) to estimate Razor area relative to core area.
func (k Kind) Area() float64 {
	switch k {
	case CONST0, CONST1:
		return 0
	case BUF:
		return 1.5
	case INV:
		return 1
	case NAND2, NOR2:
		return 1.5
	case AND2, OR2:
		return 2
	case XOR2, XNOR2:
		return 3
	case NAND3, NOR3:
		return 2
	case AND3, OR3:
		return 2.5
	case MUX2:
		return 3
	case AOI21, OAI21:
		return 2
	default:
		panic("gates: unknown kind " + k.String())
	}
}

// Eval computes the gate's output for the given input values. The length of
// in must equal NumInputs. Inputs are logical levels (false=0, true=1).
func (k Kind) Eval(in []bool) bool {
	if len(in) != k.NumInputs() {
		panic(fmt.Sprintf("gates: %s expects %d inputs, got %d", k, k.NumInputs(), len(in)))
	}
	switch k {
	case CONST0:
		return false
	case CONST1:
		return true
	case BUF:
		return in[0]
	case INV:
		return !in[0]
	case AND2:
		return in[0] && in[1]
	case OR2:
		return in[0] || in[1]
	case NAND2:
		return !(in[0] && in[1])
	case NOR2:
		return !(in[0] || in[1])
	case XOR2:
		return in[0] != in[1]
	case XNOR2:
		return in[0] == in[1]
	case NAND3:
		return !(in[0] && in[1] && in[2])
	case NOR3:
		return !(in[0] || in[1] || in[2])
	case AND3:
		return in[0] && in[1] && in[2]
	case OR3:
		return in[0] || in[1] || in[2]
	case MUX2:
		if in[0] {
			return in[2]
		}
		return in[1]
	case AOI21:
		return !((in[0] && in[1]) || in[2])
	case OAI21:
		return !((in[0] || in[1]) && in[2])
	default:
		panic("gates: unknown kind " + k.String())
	}
}

// EvalWord evaluates the gate for 64 independent input assignments at once:
// bit j of each operand word is input pin value for assignment j, and bit j
// of the result is the gate's output for that assignment. Operands beyond
// NumInputs() are ignored (pass anything). This is the bit-parallel sibling
// of Eval used by the timing package's block evaluator; the two must agree
// on every kind and input combination (TestEvalWordMatchesEval).
func (k Kind) EvalWord(a, b, c uint64) uint64 {
	switch k {
	case CONST0:
		return 0
	case CONST1:
		return ^uint64(0)
	case BUF:
		return a
	case INV:
		return ^a
	case AND2:
		return a & b
	case OR2:
		return a | b
	case NAND2:
		return ^(a & b)
	case NOR2:
		return ^(a | b)
	case XOR2:
		return a ^ b
	case XNOR2:
		return ^(a ^ b)
	case NAND3:
		return ^(a & b & c)
	case NOR3:
		return ^(a | b | c)
	case AND3:
		return a & b & c
	case OR3:
		return a | b | c
	case MUX2:
		// Pin order matches Eval: a=sel, b=input0, c=input1.
		return (^a & b) | (a & c)
	case AOI21:
		return ^((a & b) | c)
	case OAI21:
		return ^((a | b) & c)
	default:
		panic("gates: unknown kind " + k.String())
	}
}

// FFArea is the area of a standard (non-Razor) flip-flop in INV units.
const FFArea = 6.0

// RazorFFArea is the area of a Razor flip-flop: main flop + shadow latch +
// XOR comparator + error latch (Fig 1.1 of the thesis).
const RazorFFArea = FFArea + 4.0 + 3.0 + 2.5

// RazorFFEnergyOverhead is the fractional dynamic-energy overhead of a Razor
// flip-flop over a standard flip-flop (shadow latch clocking + comparator).
const RazorFFEnergyOverhead = 0.28
