package gates

import (
	"testing"
	"testing/quick"
)

func allKinds() []Kind {
	ks := make([]Kind, 0, int(numKinds))
	for k := Kind(0); k < numKinds; k++ {
		ks = append(ks, k)
	}
	return ks
}

func TestKindMetadataConsistent(t *testing.T) {
	for _, k := range allKinds() {
		if k.String() == "" {
			t.Errorf("kind %d has empty name", k)
		}
		n := k.NumInputs()
		if n < 0 || n > 3 {
			t.Errorf("%s: NumInputs = %d out of range", k, n)
		}
		if d := k.Delay(); d < 0 {
			t.Errorf("%s: negative delay %v", k, d)
		}
		if a := k.Area(); a < 0 {
			t.Errorf("%s: negative area %v", k, a)
		}
		// Constants are free; everything else costs time and area.
		if k != CONST0 && k != CONST1 {
			if k.Delay() <= 0 {
				t.Errorf("%s: delay must be positive", k)
			}
			if k.Area() <= 0 {
				t.Errorf("%s: area must be positive", k)
			}
		}
	}
}

func TestInverterIsFastest(t *testing.T) {
	for _, k := range allKinds() {
		if k == CONST0 || k == CONST1 || k == INV {
			continue
		}
		if k.Delay() < INV.Delay() {
			t.Errorf("%s delay %v is faster than INV %v", k, k.Delay(), INV.Delay())
		}
	}
}

// truth tables, indexed by input bits packed LSB-first.
var truth = map[Kind][]bool{
	BUF:   {false, true},
	INV:   {true, false},
	AND2:  {false, false, false, true},
	OR2:   {false, true, true, true},
	NAND2: {true, true, true, false},
	NOR2:  {true, false, false, false},
	XOR2:  {false, true, true, false},
	XNOR2: {true, false, false, true},
	NAND3: {true, true, true, true, true, true, true, false},
	NOR3:  {true, false, false, false, false, false, false, false},
	AND3:  {false, false, false, false, false, false, false, true},
	OR3:   {false, true, true, true, true, true, true, true},
	// MUX2 inputs are (sel, a, b): out = sel ? b : a
	MUX2:  {false, false, true, false, false, true, true, true},
	AOI21: {true, true, true, false, false, false, false, false},
	OAI21: {true, true, true, true, true, false, false, false},
}

func TestEvalTruthTables(t *testing.T) {
	for k, tt := range truth {
		n := k.NumInputs()
		if len(tt) != 1<<n {
			t.Fatalf("%s: truth table has %d entries, want %d", k, len(tt), 1<<n)
		}
		for row := 0; row < 1<<n; row++ {
			in := make([]bool, n)
			for b := 0; b < n; b++ {
				in[b] = row&(1<<b) != 0
			}
			if got := k.Eval(in); got != tt[row] {
				t.Errorf("%s.Eval(%v) = %v, want %v", k, in, got, tt[row])
			}
		}
	}
}

func TestEvalConstants(t *testing.T) {
	if CONST0.Eval(nil) != false {
		t.Error("CONST0 must evaluate to false")
	}
	if CONST1.Eval(nil) != true {
		t.Error("CONST1 must evaluate to true")
	}
}

func TestEvalArityPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Eval with wrong arity did not panic")
		}
	}()
	AND2.Eval([]bool{true})
}

// Property: De Morgan duality between the library cells.
func TestDeMorganProperty(t *testing.T) {
	f := func(a, b bool) bool {
		nand := NAND2.Eval([]bool{a, b})
		orInv := OR2.Eval([]bool{!a, !b})
		nor := NOR2.Eval([]bool{a, b})
		andInv := AND2.Eval([]bool{!a, !b})
		return nand == orInv && nor == andInv
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: XOR2 == INV(XNOR2), AOI21 == INV(a&b | c), OAI21 == INV((a|b)&c).
func TestComplementProperty(t *testing.T) {
	f := func(a, b, c bool) bool {
		if XOR2.Eval([]bool{a, b}) == XNOR2.Eval([]bool{a, b}) {
			return false
		}
		if AOI21.Eval([]bool{a, b, c}) != !((a && b) || c) {
			return false
		}
		return OAI21.Eval([]bool{a, b, c}) == !((a || b) && c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRazorAreaLargerThanFF(t *testing.T) {
	if RazorFFArea <= FFArea {
		t.Fatalf("RazorFFArea %v must exceed FFArea %v", RazorFFArea, FFArea)
	}
	if RazorFFEnergyOverhead <= 0 || RazorFFEnergyOverhead >= 1 {
		t.Fatalf("RazorFFEnergyOverhead %v out of (0,1)", RazorFFEnergyOverhead)
	}
}

// EvalWord must agree with Eval on every kind for every input combination,
// across all 64 lanes. The lanes are loaded with a different combination per
// bit position so a lane-ordering bug (e.g. a stray shift) is also caught.
func TestEvalWordMatchesEval(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		nIn := k.NumInputs()
		combos := 1 << uint(nIn)
		// Scalar truth table.
		truth := make([]bool, combos)
		for v := 0; v < combos; v++ {
			in := make([]bool, nIn)
			for i := 0; i < nIn; i++ {
				in[i] = v&(1<<uint(i)) != 0
			}
			truth[v] = k.Eval(in)
		}
		// Lane j carries combination j%combos; operand words follow.
		var a, b, c, want uint64
		for j := 0; j < 64; j++ {
			v := j % combos
			if v&1 != 0 {
				a |= 1 << uint(j)
			}
			if v&2 != 0 {
				b |= 1 << uint(j)
			}
			if v&4 != 0 {
				c |= 1 << uint(j)
			}
			if truth[v] {
				want |= 1 << uint(j)
			}
		}
		if got := k.EvalWord(a, b, c); got != want {
			t.Errorf("%s: EvalWord = %016x, want %016x", k, got, want)
		}
	}
}

// Unused operand words must not influence the result: a 1-input cell fed
// garbage in b and c behaves identically to one fed zeros.
func TestEvalWordIgnoresUnusedOperands(t *testing.T) {
	garbage := uint64(0xDEADBEEFCAFEF00D)
	for k := Kind(0); k < numKinds; k++ {
		var a, b, c uint64 = 0xAAAA5555AAAA5555, 0x3333CCCC3333CCCC, 0x0F0F0F0FF0F0F0F0
		args := []*uint64{&a, &b, &c}
		clean := k.EvalWord(a, b, c)
		for i := k.NumInputs(); i < 3; i++ {
			*args[i] = garbage
		}
		if got := k.EvalWord(a, b, c); got != clean {
			t.Errorf("%s: unused operand changed EvalWord: %016x vs %016x", k, got, clean)
		}
	}
}
