// Package cpu models the micro-architectural context around the analysed
// pipe stages: a private direct-mapped L1 data cache per core whose misses
// determine each thread's error-free CPI (CPI_base in Eq. 4.1), and a
// barrier-arrival model used to reproduce the workload-imbalance figures.
//
// This substitutes the gem5 4-core Alpha model of the paper: the paper
// consumes only per-thread instruction counts and baseline CPIs from its
// architectural simulation, both of which this package produces from the
// workload package's instruction streams.
package cpu

import (
	"fmt"

	"synts/internal/isa"
	"synts/internal/simprof"
)

// CacheConfig describes a set-associative cache with LRU replacement.
// Ways = 1 gives the direct-mapped organisation.
type CacheConfig struct {
	Lines       int // total number of lines (power of two)
	LineBytes   int // line size in bytes (power of two)
	Ways        int // associativity (power of two, divides Lines); 0 means 1
	MissPenalty int // extra cycles per miss
}

// DefaultL1 returns a 32 KiB 2-way L1 with a 20-cycle miss penalty.
func DefaultL1() CacheConfig {
	return CacheConfig{Lines: 512, LineBytes: 64, Ways: 2, MissPenalty: 20}
}

func (c CacheConfig) ways() int {
	if c.Ways == 0 {
		return 1
	}
	return c.Ways
}

// Validate reports whether the configuration is usable.
func (c CacheConfig) Validate() error {
	if c.Lines <= 0 || c.Lines&(c.Lines-1) != 0 {
		return fmt.Errorf("cpu: Lines %d must be a positive power of two", c.Lines)
	}
	if c.LineBytes <= 0 || c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cpu: LineBytes %d must be a positive power of two", c.LineBytes)
	}
	w := c.ways()
	if w <= 0 || w&(w-1) != 0 || w > c.Lines {
		return fmt.Errorf("cpu: Ways %d must be a power of two no larger than Lines %d", w, c.Lines)
	}
	if c.MissPenalty < 0 {
		return fmt.Errorf("cpu: negative MissPenalty")
	}
	return nil
}

// Cache holds valid/tag/LRU state only (data values live in the workload's
// Go structures).
type Cache struct {
	cfg   CacheConfig
	ways  int
	tags  []uint32 // sets x ways
	valid []bool
	age   []uint64 // LRU timestamps
	clock uint64

	lineShift uint
	setMask   uint32
	setShift  uint
}

// NewCache returns an empty cache.
func NewCache(cfg CacheConfig) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ways := cfg.ways()
	sets := cfg.Lines / ways
	c := &Cache{
		cfg:   cfg,
		ways:  ways,
		tags:  make([]uint32, cfg.Lines),
		valid: make([]bool, cfg.Lines),
		age:   make([]uint64, cfg.Lines),
	}
	for ls := cfg.LineBytes; ls > 1; ls >>= 1 {
		c.lineShift++
	}
	c.setMask = uint32(sets - 1)
	for s := sets; s > 1; s >>= 1 {
		c.setShift++
	}
	return c, nil
}

// Access looks up (and on miss, fills) the line holding addr, returning
// true on hit. Replacement within a set is least-recently-used.
func (c *Cache) Access(addr uint32) bool {
	line := addr >> c.lineShift
	set := int(line & c.setMask)
	tag := line >> c.setShift
	c.clock++
	base := set * c.ways
	victim := base
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == tag {
			c.age[i] = c.clock
			return true
		}
		if !c.valid[i] {
			victim = i
		} else if c.valid[victim] && c.age[i] < c.age[victim] {
			victim = i
		}
	}
	c.valid[victim] = true
	c.tags[victim] = tag
	c.age[victim] = c.clock
	return false
}

// Flush invalidates all lines.
func (c *Cache) Flush() {
	for i := range c.valid {
		c.valid[i] = false
	}
}

// CPIResult reports the baseline (error-free) CPI of an instruction window
// together with the cache outcome that produced it, so observability
// counters (obs "cpu.cache.*") can be fed from the same simulation pass
// instead of replaying the window.
type CPIResult struct {
	Instructions int
	Accesses     int
	Hits         int
	Misses       int
	CPI          float64
}

// HitRatio returns Hits/Accesses (0 when the window made no accesses).
func (r CPIResult) HitRatio() float64 {
	if r.Accesses == 0 {
		return 0
	}
	return float64(r.Hits) / float64(r.Accesses)
}

// MeasureCPI replays an instruction window through the cache and returns
// the error-free CPI: one cycle per instruction plus the stall cycles of
// data-cache misses. The cache persists across calls, so per-interval
// CPIs reflect warm-up exactly as a continuous execution would.
func MeasureCPI(iv []isa.Inst, c *Cache) CPIResult {
	return MeasureCPIScoped("", 0, 0, "", iv, c)
}

// MeasureCPIScoped is MeasureCPI with simprof attribution: per-opcode
// cache-miss stall cycles land in phase "mem" under the given kernel,
// core, interval and pipe-stage key. With kernel == "" or the profiler
// disabled it is exactly MeasureCPI — the returned result never depends
// on attribution.
func MeasureCPIScoped(kernel string, coreID, interval int, stage string, iv []isa.Inst, c *Cache) CPIResult {
	attr := kernel != "" && simprof.Enabled()
	var accesses, misses [isa.NumOps]int64
	res := CPIResult{Instructions: len(iv)}
	for _, in := range iv {
		if in.Op.Class() != isa.ClassMem {
			continue
		}
		res.Accesses++
		if c.Access(in.Addr) {
			res.Hits++
		} else {
			res.Misses++
			if attr {
				misses[in.Op]++
			}
		}
		if attr {
			accesses[in.Op]++
		}
	}
	if attr {
		penalty := float64(c.cfg.MissPenalty)
		for op, n := range accesses {
			if n == 0 {
				continue
			}
			stall := float64(misses[op]) * penalty
			simprof.Record(
				simprof.Key{Kernel: kernel, Core: coreID, Interval: interval, Phase: simprof.PhaseMem, Op: isa.Op(op).String(), Stage: stage},
				simprof.Values{Cycles: stall, Energy: stall * simprof.EnergyPerStallCyclePJ, Instrs: n},
			)
		}
	}
	if res.Instructions == 0 {
		res.CPI = 1
		return res
	}
	stall := res.Misses * c.cfg.MissPenalty
	res.CPI = 1 + float64(stall)/float64(res.Instructions)
	return res
}

// ArrivalTimes returns, for one barrier interval, each thread's arrival
// time at the barrier when all run at the same clock period and their own
// CPI — the Fig 1.4 "threads arrive at different times" measurement.
// ns[i] is thread i's instruction count, cpi[i] its CPI, tclk the clock
// period (arbitrary units).
func ArrivalTimes(ns []int, cpi []float64, tclk float64) []float64 {
	if len(ns) != len(cpi) {
		panic(fmt.Sprintf("cpu: %d instruction counts vs %d CPIs", len(ns), len(cpi)))
	}
	out := make([]float64, len(ns))
	for i := range ns {
		out[i] = float64(ns[i]) * cpi[i] * tclk
	}
	return out
}
