package cpu

import (
	"testing"

	"synts/internal/isa"
)

func TestCacheConfigValidate(t *testing.T) {
	if err := DefaultL1().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []CacheConfig{
		{Lines: 0, LineBytes: 64},
		{Lines: 3, LineBytes: 64},
		{Lines: 8, LineBytes: 0},
		{Lines: 8, LineBytes: 48},
		{Lines: 8, LineBytes: 64, MissPenalty: -1},
		{Lines: 8, LineBytes: 64, Ways: 3},
		{Lines: 8, LineBytes: 64, Ways: 16},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d accepted: %+v", i, c)
		}
	}
}

func TestCacheHitMiss(t *testing.T) {
	c, err := NewCache(CacheConfig{Lines: 4, LineBytes: 16, MissPenalty: 10})
	if err != nil {
		t.Fatal(err)
	}
	if c.Access(0x100) {
		t.Error("cold access must miss")
	}
	if !c.Access(0x100) {
		t.Error("repeat access must hit")
	}
	if !c.Access(0x10F) {
		t.Error("same-line access must hit")
	}
	if c.Access(0x110) {
		t.Error("next line must miss")
	}
	// 4 lines x 16B: 0x100 and 0x140 conflict (same index).
	c.Access(0x140)
	if c.Access(0x100) {
		t.Error("conflicting line must have evicted 0x100")
	}
}

func TestTwoWayToleratesConflict(t *testing.T) {
	// 4 lines, 2 ways -> 2 sets. Two addresses mapping to the same set
	// coexist; a third evicts the least recently used.
	c, err := NewCache(CacheConfig{Lines: 4, LineBytes: 16, Ways: 2, MissPenalty: 10})
	if err != nil {
		t.Fatal(err)
	}
	c.Access(0x000) // set 0
	c.Access(0x020) // set 0, other way
	if !c.Access(0x000) || !c.Access(0x020) {
		t.Fatal("both lines must coexist in a 2-way set")
	}
	c.Access(0x040) // set 0, third line: evicts LRU (0x000)
	// Probe the survivors first: a missing probe refills and evicts.
	if !c.Access(0x020) {
		t.Error("0x020 was more recently used and must survive")
	}
	if !c.Access(0x040) {
		t.Error("0x040 was just inserted and must be resident")
	}
	if c.Access(0x000) {
		t.Error("0x000 should have been evicted as LRU")
	}
}

func TestLRUOrderingWithinSet(t *testing.T) {
	c, _ := NewCache(CacheConfig{Lines: 8, LineBytes: 16, Ways: 4, MissPenalty: 10})
	// Fill a set with 4 lines, touch the first again, insert a fifth:
	// the second line is now LRU and must be the victim.
	addrs := []uint32{0x000, 0x020, 0x040, 0x060}
	for _, a := range addrs {
		c.Access(a)
	}
	c.Access(0x000)
	c.Access(0x080) // evicts 0x020
	// Probe the survivors first (a missing probe would refill and evict).
	for _, a := range []uint32{0x000, 0x040, 0x060, 0x080} {
		if !c.Access(a) {
			t.Errorf("%#x must still be resident", a)
		}
	}
	if c.Access(0x020) {
		t.Error("0x020 must have been evicted")
	}
}

func TestAssociativityReducesConflictMisses(t *testing.T) {
	// A ping-pong between two conflicting lines: the direct-mapped cache
	// misses every time, the 2-way cache only twice.
	run := func(ways int) int {
		c, err := NewCache(CacheConfig{Lines: 8, LineBytes: 16, Ways: ways, MissPenalty: 10})
		if err != nil {
			t.Fatal(err)
		}
		misses := 0
		for i := 0; i < 20; i++ {
			var addr uint32 = 0x000
			if i%2 == 1 {
				addr = 0x100 * uint32(8/ways) // same set in both organisations
			}
			if !c.Access(addr) {
				misses++
			}
		}
		return misses
	}
	dm := run(1)
	twoWay := run(2)
	if twoWay >= dm {
		t.Errorf("2-way misses %d must be below direct-mapped %d", twoWay, dm)
	}
	if twoWay != 2 {
		t.Errorf("2-way ping-pong should miss exactly twice, got %d", twoWay)
	}
}

func TestCacheFlush(t *testing.T) {
	c, _ := NewCache(CacheConfig{Lines: 4, LineBytes: 16, MissPenalty: 10})
	c.Access(0x100)
	c.Flush()
	if c.Access(0x100) {
		t.Error("post-flush access must miss")
	}
}

func TestMeasureCPI(t *testing.T) {
	c, _ := NewCache(CacheConfig{Lines: 4, LineBytes: 16, MissPenalty: 10})
	iv := []isa.Inst{
		{Op: isa.ADD},
		{Op: isa.LD, Addr: 0x100},
		{Op: isa.LD, Addr: 0x100}, // hit
		{Op: isa.ST, Addr: 0x200}, // miss
		{Op: isa.MUL},
	}
	res := MeasureCPI(iv, c)
	if res.Instructions != 5 || res.Accesses != 3 || res.Misses != 2 {
		t.Fatalf("got %+v", res)
	}
	want := 1 + float64(2*10)/5
	if res.CPI != want {
		t.Fatalf("CPI = %v, want %v", res.CPI, want)
	}
}

func TestMeasureCPIEmptyWindow(t *testing.T) {
	c, _ := NewCache(DefaultL1())
	res := MeasureCPI(nil, c)
	if res.CPI != 1 {
		t.Fatalf("empty window CPI = %v, want 1", res.CPI)
	}
}

func TestMeasureCPIPersistsWarmth(t *testing.T) {
	c, _ := NewCache(DefaultL1())
	iv := []isa.Inst{{Op: isa.LD, Addr: 0x1000}}
	first := MeasureCPI(iv, c)
	second := MeasureCPI(iv, c)
	if first.Misses != 1 || second.Misses != 0 {
		t.Fatalf("warmth not persisted: %d then %d misses", first.Misses, second.Misses)
	}
}

func TestArrivalTimes(t *testing.T) {
	got := ArrivalTimes([]int{100, 200}, []float64{1, 1.5}, 2)
	if got[0] != 200 || got[1] != 600 {
		t.Fatalf("arrivals = %v", got)
	}
}

func TestArrivalTimesMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatched slices")
		}
	}()
	ArrivalTimes([]int{1}, []float64{1, 2}, 1)
}

func TestMeasureCPIHitMissCounts(t *testing.T) {
	c, _ := NewCache(DefaultL1())
	iv := []isa.Inst{
		{Op: isa.LD, Addr: 0x1000},
		{Op: isa.LD, Addr: 0x1004}, // same line: hit
		{Op: isa.ADD},              // non-memory: no access
		{Op: isa.ST, Addr: 0x2000},
	}
	res := MeasureCPI(iv, c)
	if res.Accesses != 3 || res.Hits != 1 || res.Misses != 2 {
		t.Fatalf("accesses/hits/misses = %d/%d/%d, want 3/1/2", res.Accesses, res.Hits, res.Misses)
	}
	if res.Hits+res.Misses != res.Accesses {
		t.Fatal("hit and miss counts must partition the accesses")
	}
	if got, want := res.HitRatio(), 1.0/3.0; got != want {
		t.Fatalf("hit ratio = %v, want %v", got, want)
	}
	if (CPIResult{}).HitRatio() != 0 {
		t.Fatal("hit ratio of an access-free window must be 0")
	}
}

// TestHitRatioNaNFree pins the degenerate-denominator contract: HitRatio
// must return a finite value in [0,1] for every shape MeasureCPI can
// produce, including windows with no memory accesses at all.
func TestHitRatioNaNFree(t *testing.T) {
	cases := []struct {
		name string
		res  CPIResult
		want float64
	}{
		{"zero value", CPIResult{}, 0},
		{"instructions but no accesses", CPIResult{Instructions: 100}, 0},
		{"all hits", CPIResult{Instructions: 10, Accesses: 4, Hits: 4}, 1},
		{"all misses", CPIResult{Instructions: 10, Accesses: 4, Misses: 4}, 0},
		{"mixed", CPIResult{Instructions: 10, Accesses: 4, Hits: 3, Misses: 1}, 0.75},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.res.HitRatio()
			if got != got { // NaN check without importing math
				t.Fatalf("HitRatio() = NaN for %+v", tc.res)
			}
			if got != tc.want {
				t.Fatalf("HitRatio() = %v, want %v", got, tc.want)
			}
		})
	}
}
