package faults

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

func TestParseSpec(t *testing.T) {
	cases := []struct {
		spec    string
		wantErr string // substring; "" = ok
		wantOff bool
	}{
		{spec: "", wantOff: true},
		{spec: "off", wantOff: true},
		{spec: "  off  ", wantOff: true},
		{spec: "sample-noise"},
		{spec: "sample-noise,task-panic"},
		{spec: "sample-nan=0.5"},
		{spec: "replay-perturb=1"},
		{spec: "task-stall=0.01, task-panic=0.02"},
		{spec: "bogus", wantErr: "unknown class"},
		{spec: "sample-noise=0", wantErr: "want a float in (0,1]"},
		{spec: "sample-noise=1.5", wantErr: "want a float in (0,1]"},
		{spec: "sample-noise=x", wantErr: "want a float in (0,1]"},
		{spec: "sample-noise,,task-panic", wantErr: "empty class"},
		{spec: "sample-noise,sample-noise", wantErr: "given twice"},
	}
	for _, tc := range cases {
		c, err := parseSpec(tc.spec, 1)
		if tc.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("parseSpec(%q): err=%v, want substring %q", tc.spec, err, tc.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseSpec(%q): unexpected error %v", tc.spec, err)
			continue
		}
		if tc.wantOff != (c == nil) {
			t.Errorf("parseSpec(%q): off=%v, want %v", tc.spec, c == nil, tc.wantOff)
		}
	}
}

func TestCanonicalSpec(t *testing.T) {
	if err := Enable("task-panic,sample-noise", 1); err != nil {
		t.Fatal(err)
	}
	defer Disable()
	want := "sample-noise=0.25,task-panic=0.05"
	if got := Spec(); got != want {
		t.Errorf("Spec() = %q, want %q", got, want)
	}
	if !Active(SampleNoise) || !Active(TaskPanic) {
		t.Error("configured classes not Active")
	}
	if Active(SampleNaN) {
		t.Error("unconfigured class reported Active")
	}
}

func TestDisabledHooksAreIdentity(t *testing.T) {
	Disable()
	if Enabled() {
		t.Fatal("Enabled() after Disable()")
	}
	if got := Estimate(3, 2, 0.125); got != 0.125 {
		t.Errorf("Estimate = %v, want passthrough", got)
	}
	if got := ReplayErrors(7, 100, 42); got != 7 {
		t.Errorf("ReplayErrors = %v, want passthrough", got)
	}
	TaskStart(1, 0) // must not panic or stall
	if Spec() != "" {
		t.Errorf("Spec() = %q while disabled", Spec())
	}
}

// Same seed and arguments must make identical decisions regardless of
// call order — the property that makes chaos runs reproducible at any -j.
func TestDeterminism(t *testing.T) {
	sample := func() []float64 {
		if err := Enable("sample-noise,sample-drop,sample-nan", 99); err != nil {
			t.Fatal(err)
		}
		defer Disable()
		var out []float64
		for th := 0; th < 4; th++ {
			for lv := 0; lv < 6; lv++ {
				out = append(out, Estimate(th, lv, float64(lv)*0.01))
			}
		}
		return out
	}
	a, b := sample(), sample()
	for i := range a {
		same := a[i] == b[i] || (math.IsNaN(a[i]) && math.IsNaN(b[i]))
		if !same {
			t.Fatalf("run 1 vs 2 differ at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestEstimateCorruptionsObserved(t *testing.T) {
	if err := Enable("sample-nan=0.9", 5); err != nil {
		t.Fatal(err)
	}
	sawNaN := false
	for th := 0; th < 8 && !sawNaN; th++ {
		for lv := 0; lv < 6; lv++ {
			if math.IsNaN(Estimate(th, lv, 0.01)) {
				sawNaN = true
			}
		}
	}
	Disable()
	if !sawNaN {
		t.Error("sample-nan=0.9 never produced NaN over 48 estimates")
	}

	if err := Enable("sample-drop=0.9", 5); err != nil {
		t.Fatal(err)
	}
	sawDrop := false
	for th := 0; th < 8 && !sawDrop; th++ {
		for lv := 0; lv < 6; lv++ {
			if Estimate(th, lv, 0.01) == -1 {
				sawDrop = true
			}
		}
	}
	Disable()
	if !sawDrop {
		t.Error("sample-drop=0.9 never produced the -1 sentinel")
	}
}

func TestReplayErrorsBounded(t *testing.T) {
	if err := Enable("replay-perturb=1", 7); err != nil {
		t.Fatal(err)
	}
	defer Disable()
	perturbed := false
	for e := 0; e <= 10; e++ {
		got := ReplayErrors(e, 10, uint64(e))
		if got < e || got > 10 {
			t.Fatalf("ReplayErrors(%d, 10) = %d out of [errors, instrs]", e, got)
		}
		if got != e {
			perturbed = true
		}
	}
	if !perturbed {
		t.Error("replay-perturb=1 never changed an error count")
	}
	if got := ReplayErrors(3, 0, 0); got != 3 {
		t.Errorf("ReplayErrors with instrs=0 = %d, want passthrough", got)
	}
}

func TestTaskStartPanicsDeterministically(t *testing.T) {
	if err := Enable("task-panic=1", 11); err != nil {
		t.Fatal(err)
	}
	defer Disable()
	panicked := func(task uint64, attempt int) (p bool) {
		defer func() {
			if v := recover(); v != nil {
				if !IsInjectedPanic(v) {
					t.Fatalf("panic value %v is not InjectedPanic", v)
				}
				p = true
			}
		}()
		TaskStart(task, attempt)
		return false
	}
	if !panicked(1, 0) {
		t.Fatal("task-panic=1 did not panic")
	}
	if panicked(1, 0) != panicked(1, 0) {
		t.Fatal("same (task, attempt) decided differently")
	}
}

func BenchmarkEstimateDisabled(b *testing.B) {
	Disable()
	b.ReportAllocs()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = Estimate(1, 2, 0.25)
	}
	_ = sink
}

func TestDisabledEstimateZeroAllocs(t *testing.T) {
	Disable()
	allocs := testing.AllocsPerRun(1000, func() {
		Estimate(1, 2, 0.25)
		ReplayErrors(3, 100, 7)
		TaskStart(9, 0)
	})
	if allocs != 0 {
		t.Errorf("disabled hooks allocate %v per run, want 0", allocs)
	}
}

// ckpt-write-fail decisions are pure functions of the experiment name:
// stable across repeated calls, with both outcomes represented at an
// intermediate rate.
func TestCkptSaveFailDeterministicByName(t *testing.T) {
	if err := Enable(CkptWriteFail+"=0.5", 11); err != nil {
		t.Fatal(err)
	}
	defer Disable()
	first := map[string]bool{}
	fired := 0
	for i := 0; i < 40; i++ {
		name := fmt.Sprintf("exp%d", i)
		first[name] = CkptSaveFail(name)
		if first[name] {
			fired++
		}
	}
	if fired == 0 || fired == 40 {
		t.Fatalf("rate 0.5 fired on %d/40 names; decisions are not spread", fired)
	}
	for name, want := range first {
		if CkptSaveFail(name) != want {
			t.Fatalf("decision for %q changed between calls", name)
		}
	}
}

// ledger-spill-torn keeps a strict prefix of a torn line, decides per
// line content (never per call), and spares some lines at rate 0.5.
func TestSpillTearStrictPrefixAndDeterminism(t *testing.T) {
	if err := Enable(LedgerSpillTorn+"=0.5", 11); err != nil {
		t.Fatal(err)
	}
	defer Disable()
	torn, intact := 0, 0
	for i := 0; i < 40; i++ {
		line := []byte(fmt.Sprintf(`{"kind":"decision","interval":%d}`, i))
		keep := SpillTear(line)
		if keep < 0 || keep > len(line) {
			t.Fatalf("SpillTear kept %d of %d bytes", keep, len(line))
		}
		if again := SpillTear(line); again != keep {
			t.Fatalf("SpillTear(%q) changed between calls: %d then %d", line, keep, again)
		}
		if keep < len(line) {
			torn++
		} else {
			intact++
		}
	}
	if torn == 0 || intact == 0 {
		t.Fatalf("rate 0.5 tore %d/40 lines; decisions are not spread", torn)
	}
}

// The I/O fault hooks must be strict no-ops while injection is disabled.
func TestIOFaultHooksDisabledIdentity(t *testing.T) {
	Disable()
	if CkptSaveFail("table5.1") {
		t.Error("CkptSaveFail fired while disabled")
	}
	line := []byte(`{"kind":"replay"}`)
	if got := SpillTear(line); got != len(line) {
		t.Errorf("SpillTear returned %d of %d bytes while disabled", got, len(line))
	}
}
