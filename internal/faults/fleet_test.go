package faults

import (
	"testing"
	"time"
)

// All four fleet classes are inert while the injector is disabled.
func TestFleetHooksDisabled(t *testing.T) {
	Disable()
	if BackendDownAt(0, 0) {
		t.Fatal("BackendDownAt fired while disabled")
	}
	if BackendFlapAt(1, 2) {
		t.Fatal("BackendFlapAt fired while disabled")
	}
	body := []byte("response body")
	if got := RespTear(body); got != len(body) {
		t.Fatalf("RespTear = %d while disabled, want %d", got, len(body))
	}
	if got := HopDelay(0, 42); got != 0 {
		t.Fatalf("HopDelay = %v while disabled, want 0", got)
	}
}

// Decisions are pure functions of seed + site: the same seed replays the
// same outages, flaps, tears and slow hops; a different seed diverges.
func TestFleetHooksDeterministic(t *testing.T) {
	defer Disable()
	spec := "backend-down,backend-flap,resp-torn,net-slow"
	collect := func(seed int64) (down, flap []bool, tear []int, slow []bool) {
		if err := Enable(spec, seed); err != nil {
			t.Fatal(err)
		}
		for b := uint64(0); b < 4; b++ {
			for w := uint64(0); w < 32; w++ {
				down = append(down, BackendDownAt(b, w))
				flap = append(flap, BackendFlapAt(b, w))
				slow = append(slow, HopDelay(b, w) > 0)
			}
		}
		for i := 0; i < 64; i++ {
			tear = append(tear, RespTear([]byte{byte(i), byte(i >> 1), 0xEE}))
		}
		return
	}
	d1, f1, t1, s1 := collect(7)
	d2, f2, t2, s2 := collect(7)
	for i := range d1 {
		if d1[i] != d2[i] || f1[i] != f2[i] || s1[i] != s2[i] {
			t.Fatalf("site %d: same seed, different decision", i)
		}
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("tear %d: same seed, different length", i)
		}
	}
	d3, f3, t3, _ := collect(8)
	same := true
	for i := range d1 {
		if d1[i] != d3[i] || f1[i] != f3[i] {
			same = false
			break
		}
	}
	for i := range t1 {
		if t1[i] != t3[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 made identical decisions everywhere")
	}
}

// A torn response keeps a strict prefix; rate=1 tears everything, and
// hops slow by exactly NetSlowDuration.
func TestFleetHookShapes(t *testing.T) {
	defer Disable()
	if err := Enable("resp-torn=1,net-slow=1,backend-down=1", 3); err != nil {
		t.Fatal(err)
	}
	body := []byte("a full response body that should tear")
	keep := RespTear(body)
	if keep < 0 || keep >= len(body) {
		t.Fatalf("RespTear at rate 1 kept %d of %d: want a strict prefix", keep, len(body))
	}
	if got := HopDelay(2, 99); got != NetSlowDuration {
		t.Fatalf("HopDelay = %v, want %v", got, NetSlowDuration)
	}
	if !BackendDownAt(1, 5) {
		t.Fatal("BackendDownAt at rate 1 spared a backend")
	}
}

// Fleet classes fire at roughly their configured rate.
func TestFleetHookRates(t *testing.T) {
	defer Disable()
	if err := Enable("backend-flap=0.25", 11); err != nil {
		t.Fatal(err)
	}
	const n = 4000
	fired := 0
	for i := uint64(0); i < n; i++ {
		if BackendFlapAt(i%5, i) {
			fired++
		}
	}
	frac := float64(fired) / n
	if frac < 0.18 || frac > 0.32 {
		t.Fatalf("flap rate %.3f, want ~0.25", frac)
	}
}

// The spec grammar accepts the new classes (they are listed in Classes).
func TestFleetSpecParsing(t *testing.T) {
	defer Disable()
	if err := Enable("backend-down=0.5,backend-flap,resp-torn=0.1,net-slow", 1); err != nil {
		t.Fatalf("fleet spec rejected: %v", err)
	}
	for _, cl := range []string{BackendDown, BackendFlap, RespTorn, NetSlow} {
		if !Active(cl) {
			t.Fatalf("class %s not active", cl)
		}
		found := false
		for _, c := range Classes() {
			if c == cl {
				found = true
			}
		}
		if !found {
			t.Fatalf("class %s missing from Classes()", cl)
		}
	}
}

// BackendDownWindow gives outages a duration tests can reason about.
func TestBackendDownWindowSane(t *testing.T) {
	if BackendDownWindow < time.Second || BackendDownWindow > time.Minute {
		t.Fatalf("BackendDownWindow %v outside sane drill range", BackendDownWindow)
	}
}
