// Package faults is the repository's deterministic fault-injection layer:
// a seeded chaos harness that can corrupt or drop online sampling
// estimates, perturb Razor replay error counts, and panic or stall worker
// pool tasks, so the pipeline's failure handling (panic isolation in
// internal/pool, the estimate guard band in core.SolveOnline) can be
// exercised on demand instead of waiting for real faults.
//
// The package follows the obs/telemetry discipline: injection is gated on
// one atomic load, every hook is safe (and a no-op) while disabled, and
// the disabled hot path performs zero allocations (benchmarked as
// faults/EstimateDisabled in the `synts bench` suite). Decisions are pure
// functions of the configured seed and the hook's arguments — never of
// wall-clock time, goroutine scheduling, or call order — so a chaos run is
// reproducible: the same seed corrupts the same estimates regardless of
// -j.
//
// Spec grammar (the -chaos flag):
//
//	spec    := "off" | class[=rate] ("," class[=rate])*
//	class   := sample-noise | sample-drop | sample-nan |
//	           replay-perturb | task-panic | task-stall |
//	           ckpt-write-fail | ledger-spill-torn |
//	           req-slow | req-drop |
//	           backend-down | backend-flap | resp-torn | net-slow
//	rate    := float in (0, 1]   (default per class, see DefaultRate)
//
// e.g. `-chaos sample-noise,task-panic` or `-chaos sample-nan=0.5`.
package faults

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Fault classes.
const (
	// SampleNoise adds a large positive offset to an online sampling
	// estimate, pushing it out of the plausible range (the sensor still
	// reports, but reports garbage).
	SampleNoise = "sample-noise"
	// SampleDrop models a lost sampling measurement: the estimate channel
	// delivers the no-measurement sentinel -1 instead of a rate.
	SampleDrop = "sample-drop"
	// SampleNaN corrupts an estimate into NaN (a divide-by-zero or
	// uninitialised counter in the sampling hardware).
	SampleNaN = "sample-nan"
	// ReplayPerturb inflates a Razor replay's observed error count (flaky
	// shadow-latch comparator), consistently adjusting its cycle cost.
	ReplayPerturb = "replay-perturb"
	// TaskPanic panics a worker-pool task at start; the pool converts the
	// panic into an error (and retries injected panics, which fire before
	// the task body runs and so are side-effect free).
	TaskPanic = "task-panic"
	// TaskStall sleeps a worker-pool task at start for StallDuration,
	// exercising the pool's stall watchdog.
	TaskStall = "task-stall"
	// CkptWriteFail fails a checkpoint save after the .tmp file is
	// written but before the atomic rename — the disk-full / yanked-volume
	// case the tmp-then-rename protocol exists for. The run must continue
	// (the checkpoint is just lost) and the stray .tmp must be ignored by
	// validation and resume.
	CkptWriteFail = "ckpt-write-fail"
	// LedgerSpillTorn truncates a telemetry ledger spill line mid-record
	// (torn write: the process or disk died between write and flush). The
	// spill-merge path must skip the torn record, count it, and keep every
	// intact one.
	LedgerSpillTorn = "ledger-spill-torn"
	// ReqSlow makes a solver-service request's solve take ReqSlowDuration
	// longer on its shard worker (a degraded or contended solver). The
	// penalty consumes real shard capacity, so injected slowness surfaces
	// as queue depth, latency and ultimately queue-full sheds — the whole
	// overload path, exercised deterministically.
	ReqSlow = "req-slow"
	// ReqDrop fails a solver-service request after admission (a lost
	// response or a worker crash from the client's point of view); the
	// service answers 503 and records a fallback event for the request.
	ReqDrop = "req-drop"
	// BackendDown takes a fleet backend offline for whole
	// BackendDownWindow epochs (connection refused from the router's point
	// of view): the machine rebooted, the process was OOM-killed. Keyed on
	// (backend, epoch), so the outage has a deterministic victim and a
	// bounded, visible duration.
	BackendDown = "backend-down"
	// BackendFlap inverts individual /readyz probe results (an oscillating
	// readiness endpoint: a backend stuck in a crash loop or a flaky
	// health check). Keyed on (backend, probe tick).
	BackendFlap = "backend-flap"
	// RespTorn truncates a proxied response body mid-write (the router or
	// backend died between write and flush — the network twin of
	// ledger-spill-torn). The client must treat the torn body as a failed
	// attempt and retry, never parse a prefix.
	RespTorn = "resp-torn"
	// NetSlow adds NetSlowDuration of latency to one router→backend hop (a
	// congested link, a bad switch port). Keyed on (backend, request
	// digest).
	NetSlow = "net-slow"
)

// Classes lists every fault class, in spec order.
func Classes() []string {
	return []string{SampleNoise, SampleDrop, SampleNaN, ReplayPerturb, TaskPanic, TaskStall, CkptWriteFail, LedgerSpillTorn, ReqSlow, ReqDrop, BackendDown, BackendFlap, RespTorn, NetSlow}
}

// DefaultRate is the per-hook injection probability used when the spec
// gives a class without an explicit rate.
func DefaultRate(class string) float64 {
	switch class {
	case TaskPanic, TaskStall:
		return 0.05 // tasks are plentiful; a few percent exercises recovery
	default:
		return 0.25 // estimates are few; corrupt a visible fraction
	}
}

// StallDuration is how long an injected task stall sleeps.
const StallDuration = 10 * time.Millisecond

// ReqSlowDuration is how long an injected request slowdown delays a
// solver-service request. It is fixed (not shaped by hash bits) so
// latency assertions in tests and CI have a known floor.
const ReqSlowDuration = 25 * time.Millisecond

// BackendDownWindow is the epoch length of an injected backend outage:
// the router quantises elapsed time by it and asks BackendDownAt per
// (backend, epoch), so an outage lasts whole windows — long enough to
// trip a breaker, short enough that the drill sees the recovery too.
const BackendDownWindow = 5 * time.Second

// NetSlowDuration is the latency an injected slow hop adds to one
// router→backend attempt. Fixed, like ReqSlowDuration, so hedge and
// timeout assertions have a known floor.
const NetSlowDuration = 20 * time.Millisecond

// taskPanicRetries is the per-task budget of consecutive injected panics
// the pool will retry before giving up; exported for the pool via
// TaskPanicRetryBudget. With the default 5% rate the chance of exhausting
// it is (0.05)^6 ≈ 1.6e-8 per task, so chaos smoke runs complete.
const taskPanicRetries = 5

// TaskPanicRetryBudget returns how many injected panics per task the pool
// should absorb by retrying before surfacing the panic as an error.
func TaskPanicRetryBudget() int { return taskPanicRetries }

// config is an immutable parsed spec; the active one is swapped
// atomically so hooks never lock.
type config struct {
	seed  int64
	rates map[string]float64 // class -> rate; absent = class inactive
	spec  string             // canonical spec string, for logging
}

var (
	enabled atomic.Bool
	current atomic.Pointer[config]
	taskSeq atomic.Uint64 // process-wide task id source for task hooks
)

// Enabled reports whether fault injection is active: one atomic load, the
// only cost every hook pays while the injector is off.
func Enabled() bool { return enabled.Load() }

// Active reports whether a specific class is being injected.
func Active(class string) bool {
	if !enabled.Load() {
		return false
	}
	c := current.Load()
	if c == nil {
		return false
	}
	_, ok := c.rates[class]
	return ok
}

// Spec returns the canonical form of the active spec ("" while disabled).
func Spec() string {
	if !enabled.Load() {
		return ""
	}
	if c := current.Load(); c != nil {
		return c.spec
	}
	return ""
}

// Enable parses a spec and starts injecting. "off" (or "") disables.
func Enable(spec string, seed int64) error {
	c, err := parseSpec(spec, seed)
	if err != nil {
		return err
	}
	if c == nil {
		Disable()
		return nil
	}
	current.Store(c)
	taskSeq.Store(0)
	enabled.Store(true)
	return nil
}

// Disable stops all injection.
func Disable() { enabled.Store(false) }

// parseSpec validates the grammar; a nil config means "off".
func parseSpec(spec string, seed int64) (*config, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "off" {
		return nil, nil
	}
	known := map[string]bool{}
	for _, cl := range Classes() {
		known[cl] = true
	}
	rates := map[string]float64{}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("faults: empty class in spec %q", spec)
		}
		class, rateStr, hasRate := strings.Cut(part, "=")
		if !known[class] {
			return nil, fmt.Errorf("faults: unknown class %q (want one of %s)",
				class, strings.Join(Classes(), ", "))
		}
		rate := DefaultRate(class)
		if hasRate {
			r, err := strconv.ParseFloat(rateStr, 64)
			if err != nil || !(r > 0 && r <= 1) {
				return nil, fmt.Errorf("faults: rate %q for %s: want a float in (0,1]", rateStr, class)
			}
			rate = r
		}
		if _, dup := rates[class]; dup {
			return nil, fmt.Errorf("faults: class %s given twice", class)
		}
		rates[class] = rate
	}
	classes := make([]string, 0, len(rates))
	for cl := range rates {
		classes = append(classes, cl)
	}
	sort.Strings(classes)
	var b strings.Builder
	for i, cl := range classes {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%g", cl, rates[cl])
	}
	return &config{seed: seed, rates: rates, spec: b.String()}, nil
}

// hash mixes the seed, a class tag and the hook arguments into a uniform
// uint64 (splitmix64 finalizer). Decisions derived from it depend only on
// the inputs, never on execution order.
func (c *config) hash(class string, args ...uint64) uint64 {
	x := uint64(c.seed) ^ 0x9e3779b97f4a7c15
	for i := 0; i < len(class); i++ {
		x = (x ^ uint64(class[i])) * 0x100000001b3
	}
	for _, a := range args {
		x ^= a
		x *= 0xff51afd7ed558ccd
		x ^= x >> 33
	}
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// unit maps a hash to [0,1).
func unit(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// fire reports whether a hook with the given arguments injects class, and
// returns extra hash bits for shaping the corruption.
func (c *config) fire(class string, args ...uint64) (bool, uint64) {
	rate, ok := c.rates[class]
	if !ok {
		return false, 0
	}
	h := c.hash(class, args...)
	return unit(h) < rate, c.hash(class+"/shape", args...)
}

// Estimate passes one online sampling estimate (thread, TSR level,
// measured rate) through the injector. With no sample-* class active (or
// the injector disabled) it returns v unchanged. Corruptions are exactly
// the implausibilities the SolveOnline guard band screens for: NaN, the
// -1 lost-measurement sentinel, and rates far outside the physical range.
func Estimate(thread, level int, v float64) float64 {
	if !enabled.Load() {
		return v
	}
	c := current.Load()
	if c == nil {
		return v
	}
	args := []uint64{uint64(thread)<<32 | uint64(uint32(level)), math.Float64bits(v)}
	if on, _ := c.fire(SampleNaN, args...); on {
		return math.NaN()
	}
	if on, _ := c.fire(SampleDrop, args...); on {
		return -1 // lost measurement
	}
	if on, shape := c.fire(SampleNoise, args...); on {
		return v + 0.5 + unit(shape) // far above any physical error rate
	}
	return v
}

// ReplayErrors perturbs a Razor replay's observed error count
// (replay-perturb): the flaky comparator reports up to the whole window
// as errored. Returns the original count when the class is inactive. The
// result never exceeds instrs, so downstream rates stay in [0,1].
func ReplayErrors(errors, instrs int, tclkBits uint64) int {
	if !enabled.Load() || instrs == 0 {
		return errors
	}
	c := current.Load()
	if c == nil {
		return errors
	}
	on, shape := c.fire(ReplayPerturb, uint64(errors)<<32|uint64(uint32(instrs)), tclkBits)
	if !on {
		return errors
	}
	extra := 1 + int(unit(shape)*float64(instrs-errors))
	if errors+extra > instrs {
		return instrs
	}
	return errors + extra
}

// strHash folds a string into one uint64 hook argument (FNV-1a), so
// content-keyed hooks stay pure functions of their inputs.
func strHash(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 0x100000001b3
	}
	return h
}

// bytesHash is strHash over a byte slice.
func bytesHash(b []byte) uint64 {
	h := uint64(0xcbf29ce484222325)
	for _, c := range b {
		h = (h ^ uint64(c)) * 0x100000001b3
	}
	return h
}

// CkptSaveFail decides whether the checkpoint save for an experiment
// should fail with an injected I/O error (ckpt-write-fail). Keyed on the
// experiment name only, so the same experiments lose their checkpoints
// at any -j and on a resumed run.
func CkptSaveFail(experiment string) bool {
	if !enabled.Load() {
		return false
	}
	c := current.Load()
	if c == nil {
		return false
	}
	on, _ := c.fire(CkptWriteFail, strHash(experiment))
	return on
}

// SpillTear decides how many bytes of one ledger spill line reach the
// disk (ledger-spill-torn). It returns len(line) when the class is
// inactive or this line is spared; a torn line keeps a strict prefix
// (possibly zero bytes). Keyed on the line content, never on write
// order.
func SpillTear(line []byte) int {
	if !enabled.Load() {
		return len(line)
	}
	c := current.Load()
	if c == nil {
		return len(line)
	}
	on, shape := c.fire(LedgerSpillTorn, bytesHash(line))
	if !on {
		return len(line)
	}
	return int(unit(shape) * float64(len(line)))
}

// RequestDelay returns how long the solver service should slow one
// request's solve (req-slow): ReqSlowDuration when the class fires for
// this request, zero otherwise. digest is the request's content digest,
// so the same request stream slows the same requests at any -j and on
// every replay.
func RequestDelay(digest uint64) time.Duration {
	if !enabled.Load() {
		return 0
	}
	c := current.Load()
	if c == nil {
		return 0
	}
	if on, _ := c.fire(ReqSlow, digest); on {
		return ReqSlowDuration
	}
	return 0
}

// RequestDrop decides whether the solver service should fail one admitted
// request with an injected error (req-drop). Keyed on the request's
// content digest, like RequestDelay.
func RequestDrop(digest uint64) bool {
	if !enabled.Load() {
		return false
	}
	c := current.Load()
	if c == nil {
		return false
	}
	on, _ := c.fire(ReqDrop, digest)
	return on
}

// BackendDownAt decides whether fleet backend is offline for outage
// epoch window (backend-down). A pure function of (seed, backend,
// window): every router replica sees the same backend die and come back
// at the same epoch boundaries.
func BackendDownAt(backend, window uint64) bool {
	if !enabled.Load() {
		return false
	}
	c := current.Load()
	if c == nil {
		return false
	}
	on, _ := c.fire(BackendDown, backend, window)
	return on
}

// BackendFlapAt decides whether probe number probe of a backend's
// readiness check has its result inverted (backend-flap).
func BackendFlapAt(backend, probe uint64) bool {
	if !enabled.Load() {
		return false
	}
	c := current.Load()
	if c == nil {
		return false
	}
	on, _ := c.fire(BackendFlap, backend, probe)
	return on
}

// RespTear decides how many bytes of a proxied response body actually
// reach the client (resp-torn). It returns len(body) when the class is
// inactive or this response is spared; a torn response keeps a strict
// prefix. Keyed on the body content, never on send order — the same
// response tears the same way on every replay.
func RespTear(body []byte) int {
	if !enabled.Load() {
		return len(body)
	}
	c := current.Load()
	if c == nil {
		return len(body)
	}
	on, shape := c.fire(RespTorn, bytesHash(body))
	if !on {
		return len(body)
	}
	return int(unit(shape) * float64(len(body)))
}

// HopDelay returns the injected latency for one router→backend hop
// (net-slow): NetSlowDuration when the class fires for this (backend,
// request digest) pair, zero otherwise.
func HopDelay(backend, digest uint64) time.Duration {
	if !enabled.Load() {
		return 0
	}
	c := current.Load()
	if c == nil {
		return 0
	}
	if on, _ := c.fire(NetSlow, backend, digest); on {
		return NetSlowDuration
	}
	return 0
}

// InjectedPanic is the value an injected task panic carries; the pool
// recognises it (via IsInjectedPanic) and retries the task, since the
// panic fired before the task body ran.
type InjectedPanic struct {
	Task    uint64
	Attempt int
}

func (p InjectedPanic) String() string {
	return fmt.Sprintf("faults: injected panic (task %d, attempt %d)", p.Task, p.Attempt)
}

// IsInjectedPanic reports whether a recovered panic value came from
// TaskStart.
func IsInjectedPanic(v any) bool {
	_, ok := v.(InjectedPanic)
	return ok
}

// NextTaskID reserves a task id for the task-start hooks. The pool calls
// it once per task (only while injection is enabled) and passes the id to
// TaskStart on every attempt, so retry decisions are per-task
// deterministic.
func NextTaskID() uint64 { return taskSeq.Add(1) }

// TaskStart runs the task-start fault hooks for one attempt of a task:
// task-stall sleeps StallDuration, task-panic panics with an
// InjectedPanic. Callers must invoke it before the task body so an
// injected panic never interrupts real work (which makes retrying safe
// even for non-idempotent tasks).
func TaskStart(task uint64, attempt int) {
	if !enabled.Load() {
		return
	}
	c := current.Load()
	if c == nil {
		return
	}
	args := []uint64{task, uint64(uint32(attempt))}
	if on, _ := c.fire(TaskStall, args...); on {
		time.Sleep(StallDuration)
	}
	if on, _ := c.fire(TaskPanic, args...); on {
		panic(InjectedPanic{Task: task, Attempt: attempt})
	}
}
