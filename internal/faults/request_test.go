package faults

import "testing"

// Disabled injection must leave requests untouched.
func TestRequestHooksDisabled(t *testing.T) {
	Disable()
	if d := RequestDelay(12345); d != 0 {
		t.Errorf("delay %v while disabled", d)
	}
	if RequestDrop(12345) {
		t.Errorf("drop while disabled")
	}
}

// Rate 1 fires on every request; the delay is the fixed ReqSlowDuration.
func TestRequestHooksAlwaysFire(t *testing.T) {
	if err := Enable("req-slow=1,req-drop=1", 7); err != nil {
		t.Fatal(err)
	}
	defer Disable()
	for _, digest := range []uint64{0, 1, 0xdeadbeef, ^uint64(0)} {
		if d := RequestDelay(digest); d != ReqSlowDuration {
			t.Errorf("digest %x: delay %v, want %v", digest, d, ReqSlowDuration)
		}
		if !RequestDrop(digest) {
			t.Errorf("digest %x: not dropped at rate 1", digest)
		}
	}
}

// Decisions are a pure function of (seed, class, digest): repeated calls
// agree, the two classes decide independently, and a fractional rate
// fires on some but not all requests.
func TestRequestHooksDeterministic(t *testing.T) {
	if err := Enable("req-slow=0.5,req-drop=0.5", 1234); err != nil {
		t.Fatal(err)
	}
	defer Disable()
	slow, drop, differ := 0, 0, false
	for digest := uint64(0); digest < 500; digest++ {
		d1, d2 := RequestDelay(digest), RequestDelay(digest)
		if d1 != d2 {
			t.Fatalf("digest %d: delay not deterministic", digest)
		}
		p1, p2 := RequestDrop(digest), RequestDrop(digest)
		if p1 != p2 {
			t.Fatalf("digest %d: drop not deterministic", digest)
		}
		if d1 > 0 {
			slow++
		}
		if p1 {
			drop++
		}
		if (d1 > 0) != p1 {
			differ = true
		}
	}
	if slow == 0 || slow == 500 || drop == 0 || drop == 500 {
		t.Errorf("rate 0.5 fired slow=%d/500 drop=%d/500", slow, drop)
	}
	if !differ {
		t.Errorf("req-slow and req-drop decisions are identical; classes not independent")
	}
}
