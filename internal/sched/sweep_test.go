package sched

import (
	"strings"
	"testing"

	"synts/internal/obs"
)

// validConfig fabricates one internally consistent sweep cell: attribution
// reconciles exactly, workers are fully busy, and the stage sums respect
// the containment rules the validator enforces.
func validConfig(engine string, jobs int, wallNs int64, speedup float64) SweepConfig {
	parallel := wallNs * 3 / 4
	serial := wallNs - parallel
	busy := int64(jobs) * parallel
	an := &Analysis{
		WallNs:       wallNs,
		SpanWallNs:   wallNs,
		SerialNs:     serial,
		ParallelNs:   parallel,
		AttributedNs: wallNs,
		SerialFrac:   float64(serial) / float64(wallNs),
		Workers:      jobs,
		WorkerBusyNs: busy,
		WorkerIdleNs: 0,
		Stages: []StageTotal{
			{Stage: TaskSpanName, Count: 4, TotalNs: busy},
			{Stage: "trace.interval_build", Count: 4, TotalNs: busy / 2},
			{Stage: "trace.seek_pc", Count: 4, TotalNs: busy / 8},
			{Stage: "trace.delay_trace", Count: 4, TotalNs: busy / 8},
			{Stage: "trace.cpi_measure", Count: 4, TotalNs: busy / 4},
		},
	}
	return SweepConfig{Engine: engine, Jobs: jobs, WallNs: wallNs, Speedup: speedup, Analysis: an}
}

func validArtifact() *SweepArtifact {
	meta := SweepMeta{
		RunMeta:   obs.NewRunMeta(),
		Timestamp: "2026-01-01T00:00:00Z",
		Bench:     "radix",
		Threads:   4,
		Intervals: 3,
		Stages:    []string{"SimpleALU", "Decode"},
		Engines:   []string{"levelized", "event"},
		Jobs:      []int{1, 2},
	}
	meta.Seed = 2016
	meta.Size = 1
	a := &SweepArtifact{Schema: SweepSchema, Meta: meta}
	for _, eng := range []string{"levelized", "event"} {
		c1 := validConfig(eng, 1, 1_000_000_000, 1)
		c2 := validConfig(eng, 2, 600_000_000, float64(c1.WallNs)/600_000_000)
		a.Configs = append(a.Configs, c1, c2)
		pts := []SpeedupPoint{{Jobs: 1, Speedup: c1.Speedup}, {Jobs: 2, Speedup: c2.Speedup}}
		a.Fits = append(a.Fits, SweepFit{Engine: eng, Points: pts, Amdahl: FitAmdahl(pts), USL: FitUSL(pts)})
	}
	return a
}

func TestValidateSweepAcceptsValidArtifact(t *testing.T) {
	if err := ValidateSweep(validArtifact()); err != nil {
		t.Fatalf("valid artifact rejected: %v", err)
	}
}

func TestValidateSweepRejections(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(a *SweepArtifact)
		wantErr string
	}{
		{"wrong schema", func(a *SweepArtifact) { a.Schema = "synts-sweep/v0" }, "schema"},
		{"missing platform meta", func(a *SweepArtifact) { a.Meta.GoVersion = "" }, "platform"},
		{"missing workload meta", func(a *SweepArtifact) { a.Meta.Bench = "" }, "workload"},
		{"no configs", func(a *SweepArtifact) { a.Configs = nil }, "no configs"},
		{"single j point", func(a *SweepArtifact) {
			a.Configs = a.Configs[:1]
			a.Fits = a.Fits[:1]
			a.Fits[0].Points = a.Fits[0].Points[:1]
		}, "at least 2"},
		{"non-monotonic j", func(a *SweepArtifact) {
			a.Configs[1] = validConfig("levelized", 1, 600_000_000, 1.5)
		}, "strictly increasing"},
		{"baseline speedup not 1", func(a *SweepArtifact) { a.Configs[0].Speedup = 1.5 }, "want 1"},
		{"zero wall", func(a *SweepArtifact) { a.Configs[0].WallNs = 0 }, "wall_ns"},
		{"missing analysis", func(a *SweepArtifact) { a.Configs[0].Analysis = nil }, "missing analysis"},
		{"workers mismatch", func(a *SweepArtifact) { a.Configs[0].Analysis.Workers = 7 }, "workers"},
		{"attribution gap beyond 5%", func(a *SweepArtifact) {
			an := a.Configs[0].Analysis
			an.SerialNs += 100_000_000 // 10% of the 1s wall
			an.AttributedNs += 100_000_000
		}, "reconcile"},
		{"attribution identity broken", func(a *SweepArtifact) {
			a.Configs[0].Analysis.AttributedNs += 5
		}, "serial"},
		{"seek+delay exceed build", func(a *SweepArtifact) {
			an := a.Configs[0].Analysis
			for i := range an.Stages {
				if an.Stages[i].Stage == "trace.seek_pc" {
					an.Stages[i].TotalNs = an.WorkerBusyNs
				}
			}
		}, "interval_build"},
		{"task total != busy", func(a *SweepArtifact) {
			an := a.Configs[0].Analysis
			for i := range an.Stages {
				if an.Stages[i].Stage == TaskSpanName {
					an.Stages[i].TotalNs -= 12345
				}
			}
		}, "worker busy"},
		{"missing fit", func(a *SweepArtifact) { a.Fits = a.Fits[:1] }, "no fit"},
		{"serial fraction out of range", func(a *SweepArtifact) { a.Fits[0].Amdahl.SerialFrac = 1.5 }, "[0,1]"},
		{"fit point count mismatch", func(a *SweepArtifact) {
			a.Fits[0].Points = a.Fits[0].Points[:1]
		}, "points"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := validArtifact()
			tc.mutate(a)
			err := ValidateSweep(a)
			if err == nil {
				t.Fatalf("mutation %q passed validation", tc.name)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("mutation %q: error %q does not mention %q", tc.name, err, tc.wantErr)
			}
		})
	}
}

func TestWriteReportStatesSerialFractionPerEngine(t *testing.T) {
	var sb strings.Builder
	WriteReport(&sb, validArtifact())
	out := sb.String()
	for _, want := range []string{
		"## engine levelized",
		"## engine event",
		"radix",
		"| 1 |", "| 2 |",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	if n := strings.Count(out, "fitted serial fraction (Amdahl):"); n != 2 {
		t.Errorf("report states the fitted serial fraction %d times, want once per engine (2):\n%s", n, out)
	}
}
