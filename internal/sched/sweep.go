package sched

import (
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"synts/internal/obs"
)

// SweepSchema versions the `synts sweep` artifact; obscheck -sweep and any
// dashboard key on it.
const SweepSchema = "synts-sweep/v1"

// SweepMeta makes the artifact self-describing: the platform block shared
// with -stats-json plus the sweep's own workload coordinates.
type SweepMeta struct {
	obs.RunMeta
	Timestamp string   `json:"timestamp"`
	Bench     string   `json:"bench"`
	Threads   int      `json:"threads"`
	Intervals int      `json:"intervals"`
	Stages    []string `json:"stages"`
	Engines   []string `json:"engines"`
	Jobs      []int    `json:"jobs"`
}

// SweepConfig is one measured (engine, -j) cell of the matrix.
type SweepConfig struct {
	Engine   string    `json:"engine"`
	Jobs     int       `json:"jobs"`
	WallNs   int64     `json:"wall_ns"`
	Speedup  float64   `json:"speedup"` // wall(smallest j, same engine) / wall(this j)
	Analysis *Analysis `json:"analysis"`
}

// SweepFit is one engine's fitted scaling models over its speedup points.
type SweepFit struct {
	Engine string         `json:"engine"`
	Points []SpeedupPoint `json:"points"`
	Amdahl AmdahlFit      `json:"amdahl"`
	USL    USLFit         `json:"usl"`
}

// SweepArtifact is the schema-versioned result of one `synts sweep` run.
type SweepArtifact struct {
	Schema  string        `json:"schema"`
	Meta    SweepMeta     `json:"meta"`
	Configs []SweepConfig `json:"configs"`
	Fits    []SweepFit    `json:"fits"`
}

// ReconcileTolerance is the fraction of measured wall clock by which the
// span-derived attribution may disagree with it (the acceptance bound:
// dropped spans or unspanned work beyond this fails validation).
const ReconcileTolerance = 0.05

// slackNs absorbs clock granularity on very short runs when a relative
// tolerance alone would be unreasonably tight.
const slackNs = int64(2 * time.Millisecond)

// ValidateSweep enforces the synts-sweep/v1 contract: schema and meta
// presence, per-engine strictly increasing distinct -j points normalised
// to speedup 1 at the smallest, wall-clock attribution reconciling within
// ReconcileTolerance, per-stage span sums consistent with worker-busy and
// pool capacity, and a fit per engine with parameters in range.
func ValidateSweep(a *SweepArtifact) error {
	if a.Schema != SweepSchema {
		return fmt.Errorf("schema %q, want %q", a.Schema, SweepSchema)
	}
	m := &a.Meta
	if m.GoVersion == "" || m.GOOS == "" || m.GOARCH == "" {
		return fmt.Errorf("meta is missing the toolchain/platform block: %+v", m)
	}
	if m.GoMaxProcs < 1 || m.NumCPU < 1 {
		return fmt.Errorf("meta has implausible gomaxprocs=%d num_cpu=%d", m.GoMaxProcs, m.NumCPU)
	}
	if m.Bench == "" || m.Threads < 1 || m.Intervals < 1 || len(m.Stages) == 0 {
		return fmt.Errorf("meta is missing the workload coordinates: %+v", m)
	}
	if len(a.Configs) == 0 {
		return fmt.Errorf("no configs")
	}

	byEngine := map[string][]SweepConfig{}
	for i, c := range a.Configs {
		if c.Engine == "" {
			return fmt.Errorf("config %d: empty engine", i)
		}
		if c.Jobs < 1 {
			return fmt.Errorf("config %d (%s): jobs %d < 1", i, c.Engine, c.Jobs)
		}
		if c.WallNs <= 0 {
			return fmt.Errorf("config %d (%s j=%d): wall_ns %d <= 0", i, c.Engine, c.Jobs, c.WallNs)
		}
		if c.Analysis == nil {
			return fmt.Errorf("config %d (%s j=%d): missing analysis", i, c.Engine, c.Jobs)
		}
		if err := validateAnalysis(c); err != nil {
			return fmt.Errorf("config %s j=%d: %w", c.Engine, c.Jobs, err)
		}
		byEngine[c.Engine] = append(byEngine[c.Engine], c)
	}

	for eng, cfgs := range byEngine {
		if len(cfgs) < 2 {
			return fmt.Errorf("engine %s: %d -j point(s), want at least 2", eng, len(cfgs))
		}
		for i := 1; i < len(cfgs); i++ {
			if cfgs[i].Jobs <= cfgs[i-1].Jobs {
				return fmt.Errorf("engine %s: -j points not strictly increasing (%d after %d)",
					eng, cfgs[i].Jobs, cfgs[i-1].Jobs)
			}
		}
		if d := math.Abs(cfgs[0].Speedup - 1); d > 1e-9 {
			return fmt.Errorf("engine %s: smallest -j point has speedup %v, want 1", eng, cfgs[0].Speedup)
		}
		for _, c := range cfgs {
			if c.Speedup <= 0 || math.IsNaN(c.Speedup) || math.IsInf(c.Speedup, 0) {
				return fmt.Errorf("engine %s j=%d: implausible speedup %v", eng, c.Jobs, c.Speedup)
			}
		}
	}

	fitEngines := map[string]bool{}
	for _, f := range a.Fits {
		fitEngines[f.Engine] = true
		if f.Amdahl.SerialFrac < 0 || f.Amdahl.SerialFrac > 1 {
			return fmt.Errorf("fit %s: Amdahl serial fraction %v outside [0,1]", f.Engine, f.Amdahl.SerialFrac)
		}
		if f.USL.Sigma < 0 || f.USL.Sigma > 1 || f.USL.Kappa < 0 || f.USL.Kappa > 1 {
			return fmt.Errorf("fit %s: USL parameters σ=%v κ=%v outside [0,1]", f.Engine, f.USL.Sigma, f.USL.Kappa)
		}
		if f.Amdahl.RMSE < 0 || f.USL.RMSE < 0 {
			return fmt.Errorf("fit %s: negative rmse", f.Engine)
		}
		if len(f.Points) != len(byEngine[f.Engine]) {
			return fmt.Errorf("fit %s: %d points for %d configs", f.Engine, len(f.Points), len(byEngine[f.Engine]))
		}
	}
	for eng := range byEngine {
		if !fitEngines[eng] {
			return fmt.Errorf("engine %s has configs but no fit", eng)
		}
	}
	return nil
}

// validateAnalysis checks one config's attribution against its measured
// wall clock: the span-derived attribution must reconcile with the
// independent wall measurement within ReconcileTolerance, capacity splits
// must be internally consistent, and the per-stage span sums must not
// exceed what the pool could have executed.
func validateAnalysis(c SweepConfig) error {
	an := c.Analysis
	if an.Workers != c.Jobs {
		return fmt.Errorf("analysis ran with %d workers, config says %d", an.Workers, c.Jobs)
	}
	if an.SerialNs < 0 || an.ParallelNs < 0 {
		return fmt.Errorf("negative serial/parallel attribution: %+v", an)
	}
	if an.AttributedNs != an.SerialNs+an.ParallelNs {
		return fmt.Errorf("attributed %d != serial %d + parallel %d", an.AttributedNs, an.SerialNs, an.ParallelNs)
	}
	if an.SerialFrac < 0 || an.SerialFrac > 1 {
		return fmt.Errorf("serial fraction %v outside [0,1]", an.SerialFrac)
	}
	// The reconciliation with teeth: attribution comes from span records,
	// wall from an independent timer.
	tol := int64(ReconcileTolerance*float64(c.WallNs)) + slackNs
	if d := an.AttributedNs - c.WallNs; d > tol || d < -tol {
		return fmt.Errorf("attributed %s does not reconcile with measured wall %s (tolerance %s)",
			time.Duration(an.AttributedNs), time.Duration(c.WallNs), time.Duration(tol))
	}
	// Capacity: Workers × Parallel = Busy + Idle, and busy cannot exceed
	// what j workers could execute inside the wall clock.
	capacity := int64(an.Workers) * an.ParallelNs
	if an.WorkerBusyNs+an.WorkerIdleNs > capacity+slackNs {
		return fmt.Errorf("busy %d + idle %d exceeds capacity %d", an.WorkerBusyNs, an.WorkerIdleNs, capacity)
	}
	if an.WorkerBusyNs > int64(an.Workers)*c.WallNs+int64(an.Workers)*slackNs {
		return fmt.Errorf("worker busy %s exceeds %d × wall %s",
			time.Duration(an.WorkerBusyNs), an.Workers, time.Duration(c.WallNs))
	}
	// Per-stage sums: children stay within their parents, task-side
	// stages stay within worker-busy, and everything stays within pool
	// capacity over the wall clock.
	tot := map[string]int64{}
	for _, s := range an.Stages {
		if s.TotalNs < 0 {
			return fmt.Errorf("stage %s: negative total", s.Stage)
		}
		tot[s.Stage] = s.TotalNs
	}
	build := tot["trace.interval_build"]
	if s := tot["trace.seek_pc"] + tot["trace.delay_trace"]; s > build+slackNs {
		return fmt.Errorf("seek_pc+delay_trace %s exceeds interval_build %s",
			time.Duration(s), time.Duration(build))
	}
	if s := build + tot["trace.cpi_measure"]; s > an.WorkerBusyNs+slackNs {
		return fmt.Errorf("task-side stage sum %s exceeds worker busy %s",
			time.Duration(s), time.Duration(an.WorkerBusyNs))
	}
	if tt := tot[TaskSpanName]; tt != an.WorkerBusyNs {
		return fmt.Errorf("pool.task stage total %d != worker busy %d", tt, an.WorkerBusyNs)
	}
	return nil
}

// fmtDur renders a nanosecond count compactly for the report.
func fmtDur(ns int64) string {
	return time.Duration(ns).Round(10 * time.Microsecond).String()
}

// WriteReport renders the human-facing sweep report (markdown-flavoured
// text): per engine, the measured matrix with wall-clock attribution, the
// fitted serial fraction (Amdahl) and contention/coherency split (USL),
// and the straggler picture.
func WriteReport(w io.Writer, a *SweepArtifact) {
	m := &a.Meta
	fmt.Fprintf(w, "# synts sweep — scaling & attribution\n\n")
	fmt.Fprintf(w, "workload: %s (size %d, seed %d, %d threads × %d intervals, stages %v)\n",
		m.Bench, m.Size, m.Seed, m.Threads, m.Intervals, m.Stages)
	fmt.Fprintf(w, "platform: %s %s/%s, GOMAXPROCS=%d, NumCPU=%d\n",
		m.GoVersion, m.GOOS, m.GOARCH, m.GoMaxProcs, m.NumCPU)

	engines := make([]string, 0, len(a.Fits))
	for _, f := range a.Fits {
		engines = append(engines, f.Engine)
	}
	sort.Strings(engines)
	fitByEngine := map[string]SweepFit{}
	for _, f := range a.Fits {
		fitByEngine[f.Engine] = f
	}
	for _, eng := range engines {
		fmt.Fprintf(w, "\n## engine %s\n\n", eng)
		fmt.Fprintf(w, "| j | wall | speedup | ideal | serial | critical path | busy/worker | idle/worker | queue wait | imbalance |\n")
		fmt.Fprintf(w, "|---|------|---------|-------|--------|---------------|-------------|-------------|------------|-----------|\n")
		for _, c := range a.Configs {
			if c.Engine != eng {
				continue
			}
			an := c.Analysis
			busyPer, idlePer := int64(0), int64(0)
			if an.Workers > 0 {
				busyPer = an.WorkerBusyNs / int64(an.Workers)
				idlePer = an.WorkerIdleNs / int64(an.Workers)
			}
			fmt.Fprintf(w, "| %d | %s | %.2fx | %dx | %.1f%% | %s | %s | %s | %s | %.2f |\n",
				c.Jobs, fmtDur(c.WallNs), c.Speedup, c.Jobs,
				an.SerialFrac*100, fmtDur(an.CriticalPathNs),
				fmtDur(busyPer), fmtDur(idlePer), fmtDur(an.QueueWaitNs),
				an.ImbalanceMaxMean)
		}
		if f, ok := fitByEngine[eng]; ok {
			fmt.Fprintf(w, "\nfitted serial fraction (Amdahl): %.3f (rmse %.3f)\n", f.Amdahl.SerialFrac, f.Amdahl.RMSE)
			fmt.Fprintf(w, "fitted contention σ=%.3f, coherency κ=%.4f (USL, rmse %.3f)\n", f.USL.Sigma, f.USL.Kappa, f.USL.RMSE)
			if f.USL.RMSE < f.Amdahl.RMSE {
				fmt.Fprintf(w, "USL fits better: scaling loss includes contention/coherency beyond a pure serial fraction\n")
			} else {
				fmt.Fprintf(w, "Amdahl fits at least as well: scaling loss is explained by the serial fraction alone\n")
			}
		}
	}
	fmt.Fprintf(w, "\nattribution identity per config: wall ≈ serial + parallel; workers × parallel = busy + idle (reconciled within %.0f%%)\n",
		ReconcileTolerance*100)
}
