package sched

import (
	"math"
	"testing"
)

// synthetic builds speedup points from a model over the given -j values.
func synthetic(js []int, model func(j int) float64) []SpeedupPoint {
	pts := make([]SpeedupPoint, len(js))
	for i, j := range js {
		pts[i] = SpeedupPoint{Jobs: j, Speedup: model(j)}
	}
	return pts
}

func TestFitAmdahlRecoversSerialFraction(t *testing.T) {
	js := []int{1, 2, 4, 8, 16}
	for _, s := range []float64{0, 0.05, 0.1, 0.3, 0.9} {
		pts := synthetic(js, func(j int) float64 { return AmdahlSpeedup(s, j) })
		fit := FitAmdahl(pts)
		if math.Abs(fit.SerialFrac-s) > 1e-3 {
			t.Errorf("s=%v: fitted %v", s, fit.SerialFrac)
		}
		if fit.RMSE > 1e-3 {
			t.Errorf("s=%v: rmse %v on noise-free data", s, fit.RMSE)
		}
	}
}

func TestFitAmdahlPerfectScaling(t *testing.T) {
	pts := synthetic([]int{1, 2, 4, 8}, func(j int) float64 { return float64(j) })
	fit := FitAmdahl(pts)
	if fit.SerialFrac > 1e-6 {
		t.Errorf("linear speedup fitted serial fraction %v, want ~0", fit.SerialFrac)
	}
}

func TestFitUSLRecoversParameters(t *testing.T) {
	js := []int{1, 2, 4, 8, 16, 32}
	cases := []struct{ sigma, kappa float64 }{
		{0.05, 0},
		{0.1, 0.01},
		{0, 0.02},
	}
	for _, c := range cases {
		pts := synthetic(js, func(j int) float64 { return USLSpeedup(c.sigma, c.kappa, j) })
		fit := FitUSL(pts)
		if fit.RMSE > 1e-3 {
			t.Errorf("σ=%v κ=%v: rmse %v on noise-free data (fit σ=%v κ=%v)",
				c.sigma, c.kappa, fit.RMSE, fit.Sigma, fit.Kappa)
		}
		if math.Abs(fit.Sigma-c.sigma) > 5e-3 || math.Abs(fit.Kappa-c.kappa) > 5e-3 {
			t.Errorf("σ=%v κ=%v: fitted σ=%v κ=%v", c.sigma, c.kappa, fit.Sigma, fit.Kappa)
		}
	}
}

func TestUSLRetrogradeScaling(t *testing.T) {
	// With κ > 0 the USL predicts throughput *decline* past the peak —
	// the property that distinguishes coherency cost from a serial
	// fraction, which only saturates.
	if s32, s64 := USLSpeedup(0.05, 0.01, 32), USLSpeedup(0.05, 0.01, 64); s64 >= s32 {
		t.Errorf("USL(64)=%v >= USL(32)=%v, want retrograde decline", s64, s32)
	}
	if a32, a64 := AmdahlSpeedup(0.05, 32), AmdahlSpeedup(0.05, 64); a64 < a32 {
		t.Errorf("Amdahl(64)=%v < Amdahl(32)=%v, Amdahl never declines", a64, a32)
	}
}

func TestFitUSLOnAmdahlDataFindsNoCoherency(t *testing.T) {
	// Pure-Amdahl data has no pairwise-exchange term; the USL fit should
	// discover κ ≈ 0 rather than inventing coherency cost.
	pts := synthetic([]int{1, 2, 4, 8, 16}, func(j int) float64 { return AmdahlSpeedup(0.2, j) })
	fit := FitUSL(pts)
	if fit.Kappa > 1e-3 {
		t.Errorf("κ=%v on pure-Amdahl data, want ~0 (σ=%v)", fit.Kappa, fit.Sigma)
	}
}
