package sched

import (
	"math"
	"testing"

	"synts/internal/obs"
)

// rec builds a SpanRecord for hand-built DAGs.
func rec(name string, id int64, tid int, start, dur int64, deps ...int64) obs.SpanRecord {
	return obs.SpanRecord{Name: name, ID: id, TID: tid, StartNs: start, DurNs: dur, Deps: deps}
}

func TestCriticalPathSerialChain(t *testing.T) {
	// A -> B -> C, strictly sequential: the critical path is everything.
	recs := []obs.SpanRecord{
		rec("a", 1, 0, 0, 100),
		rec("b", 2, 0, 100, 200, 1),
		rec("c", 3, 0, 300, 300, 2),
	}
	a := Analyze(recs, Options{})
	if a.CriticalPathNs != 600 {
		t.Fatalf("critical path %d, want 600", a.CriticalPathNs)
	}
	if a.CriticalPathFrac != 1.0 {
		t.Fatalf("critical path fraction %v, want 1.0 (fully serial chain)", a.CriticalPathFrac)
	}
	if len(a.CriticalPath) != 3 {
		t.Fatalf("critical path has %d steps, want 3: %+v", len(a.CriticalPath), a.CriticalPath)
	}
	for i, want := range []string{"a", "b", "c"} {
		if a.CriticalPath[i].Name != want {
			t.Errorf("step %d = %q, want %q (dependency-first order)", i, a.CriticalPath[i].Name, want)
		}
	}
	// No pool.task spans: everything is serial time.
	if a.ParallelNs != 0 || a.SerialNs != 600 || a.SerialFrac != 1.0 {
		t.Errorf("serial/parallel split = %d/%d (frac %v), want 600/0 (frac 1)",
			a.SerialNs, a.ParallelNs, a.SerialFrac)
	}
}

func TestCriticalPathForkJoin(t *testing.T) {
	// setup -> {task1, task2 in parallel} -> join. The heavier branch
	// (task2) carries the critical path.
	recs := []obs.SpanRecord{
		rec("setup", 1, 0, 0, 100),
		rec(TaskSpanName, 2, 1, 100, 200, 1),
		rec(TaskSpanName, 3, 2, 100, 250, 1),
		rec("join", 4, 0, 350, 50, 2, 3),
	}
	a := Analyze(recs, Options{Workers: 2})
	wantCP := int64(100 + 250 + 50)
	if a.CriticalPathNs != wantCP {
		t.Fatalf("critical path %d, want %d (setup -> heavier task -> join)", a.CriticalPathNs, wantCP)
	}
	names := []string{"setup", TaskSpanName, "join"}
	if len(a.CriticalPath) != len(names) {
		t.Fatalf("critical path %+v, want names %v", a.CriticalPath, names)
	}
	for i, want := range names {
		if a.CriticalPath[i].Name != want {
			t.Errorf("step %d = %q, want %q", i, a.CriticalPath[i].Name, want)
		}
	}
	if a.CriticalPath[1].ID != 3 {
		t.Errorf("critical path took task %d, want 3 (the 250ns branch)", a.CriticalPath[1].ID)
	}
	totalLinked := float64(100 + 200 + 250 + 50)
	if want := float64(wantCP) / totalLinked; math.Abs(a.CriticalPathFrac-want) > 1e-12 {
		t.Errorf("critical path fraction %v, want %v", a.CriticalPathFrac, want)
	}

	// Attribution: tasks cover [100,350) => parallel 250; the span
	// timeline is [0,400) => serial 150.
	if a.SpanWallNs != 400 {
		t.Errorf("span wall %d, want 400", a.SpanWallNs)
	}
	if a.ParallelNs != 250 || a.SerialNs != 150 || a.AttributedNs != 400 {
		t.Errorf("attribution serial=%d parallel=%d attributed=%d, want 150/250/400",
			a.SerialNs, a.ParallelNs, a.AttributedNs)
	}
	// 2 workers over a 250ns parallel region: 450 busy, 50 idle.
	if a.WorkerBusyNs != 450 || a.WorkerIdleNs != 50 {
		t.Errorf("busy=%d idle=%d, want 450/50", a.WorkerBusyNs, a.WorkerIdleNs)
	}
}

func TestAnalyzeStragglerAndStages(t *testing.T) {
	// Three workers; worker 3 runs 4x longer than the others.
	recs := []obs.SpanRecord{
		rec(TaskSpanName, 1, 1, 0, 100),
		rec(TaskSpanName, 2, 2, 0, 100),
		rec(TaskSpanName, 3, 3, 0, 400),
		rec("trace.interval_build:Decode", 4, 1, 0, 60),
		rec("trace.interval_build:SimpleALU", 5, 2, 0, 70),
	}
	a := Analyze(recs, Options{Workers: 3, WallNs: 400, QueueWaitNs: 42})
	if a.StragglerTID != 3 {
		t.Errorf("straggler TID %d, want 3", a.StragglerTID)
	}
	// max 400 / mean 200 = 2.0
	if math.Abs(a.ImbalanceMaxMean-2.0) > 1e-12 {
		t.Errorf("imbalance %v, want 2.0", a.ImbalanceMaxMean)
	}
	if a.QueueWaitNs != 42 {
		t.Errorf("queue wait %d, want 42 (passed through)", a.QueueWaitNs)
	}
	if len(a.WorkersDetail) != 3 || a.WorkersDetail[2].TID != 3 || a.WorkersDetail[2].BusyNs != 400 {
		t.Errorf("workers detail %+v, want 3 rows sorted by TID", a.WorkersDetail)
	}
	// Both interval_build qualifiers aggregate under one stage.
	var buildTot *StageTotal
	for i := range a.Stages {
		if a.Stages[i].Stage == "trace.interval_build" {
			buildTot = &a.Stages[i]
		}
	}
	if buildTot == nil || buildTot.Count != 2 || buildTot.TotalNs != 130 {
		t.Errorf("interval_build stage = %+v, want count 2 total 130", buildTot)
	}
	// Workers=3, parallel=400 => capacity 1200, busy 600, idle 600.
	if a.WorkerBusyNs != 600 || a.WorkerIdleNs != 600 {
		t.Errorf("busy=%d idle=%d, want 600/600", a.WorkerBusyNs, a.WorkerIdleNs)
	}
}

func TestAnalyzeEmptyAndCycle(t *testing.T) {
	a := Analyze(nil, Options{WallNs: 123})
	if a.WallNs != 123 || a.CriticalPathNs != 0 {
		t.Errorf("empty analysis = %+v, want wall 123, no critical path", a)
	}

	// A cycle (which a correct producer never emits) must not hang or
	// blow the stack; the closing edge is ignored.
	recs := []obs.SpanRecord{
		rec("a", 1, 0, 0, 100, 2),
		rec("b", 2, 0, 100, 200, 1),
	}
	a = Analyze(recs, Options{})
	if a.CriticalPathNs != 300 {
		t.Errorf("cycle-broken critical path %d, want 300 (one edge ignored)", a.CriticalPathNs)
	}
}

func TestStageOf(t *testing.T) {
	for name, want := range map[string]string{
		"trace.interval_build:SimpleALU": "trace.interval_build",
		"trace.seek_pc":                  "trace.seek_pc",
		"pool.task":                      "pool.task",
		"exp.run:SynTS-Poly:radix":       "exp.run",
	} {
		if got := StageOf(name); got != want {
			t.Errorf("StageOf(%q) = %q, want %q", name, got, want)
		}
	}
}
