// Package sched is the scheduler-observability layer: it reconstructs the
// execution DAG of a run from the span records the obs layer collected
// (parent/child nesting, pool-task Submitter attribution edges, and the
// explicit happens-before Deps edges trace.BuildProfiles emits per
// (thread, interval)), and turns the DAG into answers a scaling study
// needs — the critical path, the measured serial fraction, per-stage
// aggregate time, queue-wait vs worker-busy vs idle attribution, and
// per-worker straggler statistics. The `synts sweep` subcommand runs the
// -j × -engine matrix through this analyzer and fits Amdahl/USL models to
// the measured speedups (fit.go); the artifact schema and its validator
// live in sweep.go.
package sched

import (
	"sort"
	"strings"

	"synts/internal/obs"
)

// TaskSpanName is the span name internal/pool gives every worker task;
// the union of these spans' intervals is the run's parallel region.
const TaskSpanName = "pool.task"

// Options configures one analysis.
type Options struct {
	// WallNs is the externally measured wall clock of the analysed run;
	// 0 derives it from the span records (max end − min start).
	WallNs int64
	// Workers is the pool size j of the analysed run; 0 counts the
	// distinct worker rows (TIDs) the task spans used.
	Workers int
	// QueueWaitNs is the summed pool.queue_wait_ns histogram of the run
	// (diagnostic: queue wait overlaps other workers' busy time, so it is
	// reported alongside, not added into, the wall-clock attribution).
	QueueWaitNs int64
}

// StageTotal aggregates the spans of one pipeline stage.
type StageTotal struct {
	Stage   string `json:"stage"`
	Count   int    `json:"count"`
	TotalNs int64  `json:"total_ns"`
}

// WorkerStat is one worker row's share of the run.
type WorkerStat struct {
	TID    int   `json:"tid"`
	Tasks  int   `json:"tasks"`
	BusyNs int64 `json:"busy_ns"`
}

// PathStep is one node of the critical path.
type PathStep struct {
	Name  string `json:"name"`
	ID    int64  `json:"id"`
	DurNs int64  `json:"dur_ns"`
}

// Analysis is the reconstructed scheduling picture of one run.
//
// The attribution identity is
//
//	AttributedNs = SerialNs + ParallelNs
//
// where ParallelNs is the union coverage of the pool-task spans and
// SerialNs the span-timeline remainder outside it. AttributedNs is derived
// entirely from span records while WallNs is an independent measurement,
// so comparing them is a genuine reconciliation check (obscheck enforces
// agreement within 5%): dropped spans or unspanned work show up as a gap.
// Within the parallel region, capacity splits as
//
//	Workers × ParallelNs = WorkerBusyNs + WorkerIdleNs.
type Analysis struct {
	WallNs     int64 `json:"wall_ns"`      // measured (or span-derived) wall clock
	SpanWallNs int64 `json:"span_wall_ns"` // span timeline: max end − min start

	SerialNs     int64   `json:"serial_ns"`   // no task in flight
	ParallelNs   int64   `json:"parallel_ns"` // ≥1 task in flight (union coverage)
	AttributedNs int64   `json:"attributed_ns"`
	SerialFrac   float64 `json:"serial_fraction"` // SerialNs / AttributedNs

	Workers      int   `json:"workers"`
	WorkerBusyNs int64 `json:"worker_busy_ns"` // Σ task span durations
	WorkerIdleNs int64 `json:"worker_idle_ns"` // Workers×ParallelNs − WorkerBusyNs
	QueueWaitNs  int64 `json:"queue_wait_ns"`  // Σ queue-wait (overlaps busy; diagnostic)

	CriticalPathNs   int64      `json:"critical_path_ns"`
	CriticalPath     []PathStep `json:"critical_path,omitempty"`
	CriticalPathFrac float64    `json:"critical_path_fraction"` // CP / total dep-linked work

	Stages        []StageTotal `json:"stages"`
	WorkersDetail []WorkerStat `json:"workers_detail,omitempty"`

	// Submitters attributes the pool-task busy time to the stage of the
	// span that submitted each task (the Submitter edge): for a batch run
	// that is the experiment driver ("exp.run"), for the solver service
	// the request span ("service.request"), so service wall-clock can be
	// split from background work sharing the same pool. Tasks whose
	// submitter span is unknown (or none) aggregate under "(none)".
	Submitters []StageTotal `json:"submitters,omitempty"`

	StragglerTID     int     `json:"straggler_tid"`      // worker with the most busy time
	ImbalanceMaxMean float64 `json:"imbalance_max_mean"` // max worker busy / mean worker busy
}

// StageOf classifies a span name into its pipeline stage: the name up to
// the first ':' (span names are "<stage>:<qualifier>"), so
// "trace.interval_build:SimpleALU" and "trace.interval_build:Decode" both
// aggregate under "trace.interval_build".
func StageOf(name string) string {
	if i := strings.IndexByte(name, ':'); i >= 0 {
		return name[:i]
	}
	return name
}

// Analyze reconstructs the execution DAG from a run's span records.
func Analyze(recs []obs.SpanRecord, opts Options) *Analysis {
	a := &Analysis{Workers: opts.Workers, QueueWaitNs: opts.QueueWaitNs}
	if len(recs) == 0 {
		a.WallNs = opts.WallNs
		return a
	}

	// Span timeline bounds.
	minStart, maxEnd := recs[0].StartNs, recs[0].StartNs+recs[0].DurNs
	for _, r := range recs {
		if r.StartNs < minStart {
			minStart = r.StartNs
		}
		if end := r.StartNs + r.DurNs; end > maxEnd {
			maxEnd = end
		}
	}
	a.SpanWallNs = maxEnd - minStart
	a.WallNs = opts.WallNs
	if a.WallNs <= 0 {
		a.WallNs = a.SpanWallNs
	}

	// Parallel region: union coverage of the task spans; busy and
	// per-worker stats fall out of the same pass.
	type iv struct{ s, e int64 }
	var tasks []iv
	workerBusy := map[int]*WorkerStat{}
	for _, r := range recs {
		if r.Name != TaskSpanName {
			continue
		}
		tasks = append(tasks, iv{r.StartNs, r.StartNs + r.DurNs})
		a.WorkerBusyNs += r.DurNs
		w := workerBusy[r.TID]
		if w == nil {
			w = &WorkerStat{TID: r.TID}
			workerBusy[r.TID] = w
		}
		w.Tasks++
		w.BusyNs += r.DurNs
	}
	sort.Slice(tasks, func(i, j int) bool { return tasks[i].s < tasks[j].s })
	var coverage, curS, curE int64
	for i, t := range tasks {
		if i == 0 || t.s > curE {
			coverage += curE - curS
			curS, curE = t.s, t.e
			continue
		}
		if t.e > curE {
			curE = t.e
		}
	}
	coverage += curE - curS
	a.ParallelNs = coverage
	a.SerialNs = a.SpanWallNs - coverage
	if a.SerialNs < 0 {
		a.SerialNs = 0
	}
	a.AttributedNs = a.SerialNs + a.ParallelNs
	if a.AttributedNs > 0 {
		a.SerialFrac = float64(a.SerialNs) / float64(a.AttributedNs)
	}
	if a.Workers <= 0 {
		a.Workers = len(workerBusy)
	}
	if a.Workers > 0 {
		a.WorkerIdleNs = int64(a.Workers)*a.ParallelNs - a.WorkerBusyNs
		if a.WorkerIdleNs < 0 {
			a.WorkerIdleNs = 0
		}
	}

	// Per-worker straggler/imbalance stats.
	for _, w := range workerBusy {
		a.WorkersDetail = append(a.WorkersDetail, *w)
	}
	sort.Slice(a.WorkersDetail, func(i, j int) bool { return a.WorkersDetail[i].TID < a.WorkersDetail[j].TID })
	if n := len(a.WorkersDetail); n > 0 {
		var sum, max int64
		for _, w := range a.WorkersDetail {
			sum += w.BusyNs
			if w.BusyNs > max {
				max = w.BusyNs
				a.StragglerTID = w.TID
			}
		}
		if sum > 0 {
			a.ImbalanceMaxMean = float64(max) / (float64(sum) / float64(n))
		}
	}

	// Submitter attribution: task busy time grouped by the stage of the
	// span that enqueued the task.
	nameByID := make(map[int64]string, len(recs))
	for _, r := range recs {
		nameByID[r.ID] = r.Name
	}
	subTot := map[string]*StageTotal{}
	for _, r := range recs {
		if r.Name != TaskSpanName {
			continue
		}
		st := "(none)"
		if n, ok := nameByID[r.Submitter]; ok && r.Submitter != 0 {
			st = StageOf(n)
		}
		g := subTot[st]
		if g == nil {
			g = &StageTotal{Stage: st}
			subTot[st] = g
		}
		g.Count++
		g.TotalNs += r.DurNs
	}
	for _, g := range subTot {
		a.Submitters = append(a.Submitters, *g)
	}
	sort.Slice(a.Submitters, func(i, j int) bool { return a.Submitters[i].Stage < a.Submitters[j].Stage })

	// Per-stage aggregate time.
	stageTot := map[string]*StageTotal{}
	for _, r := range recs {
		st := StageOf(r.Name)
		g := stageTot[st]
		if g == nil {
			g = &StageTotal{Stage: st}
			stageTot[st] = g
		}
		g.Count++
		g.TotalNs += r.DurNs
	}
	for _, g := range stageTot {
		a.Stages = append(a.Stages, *g)
	}
	sort.Slice(a.Stages, func(i, j int) bool { return a.Stages[i].Stage < a.Stages[j].Stage })

	a.CriticalPathNs, a.CriticalPath, a.CriticalPathFrac = criticalPath(recs)
	return a
}

// criticalPath computes the heaviest chain through the explicit
// happens-before edges (SpanRecord.Deps): the longest-by-duration path in
// the DAG, i.e. the time the traced work would need on infinitely many
// workers if the recorded dependences were respected. Returns the path
// (dependency-first), its total duration, and its fraction of the total
// duration of dep-linked spans (1.0 = fully serial chain). Spans outside
// the dependency graph form single-node chains; cycles (which a correct
// producer never emits) are broken by ignoring the closing edge.
func criticalPath(recs []obs.SpanRecord) (int64, []PathStep, float64) {
	byID := make(map[int64]int, len(recs))
	for i, r := range recs {
		byID[r.ID] = i
	}
	// linked marks spans participating in the dependency graph.
	linked := make([]bool, len(recs))
	for i, r := range recs {
		for _, d := range r.Deps {
			if j, ok := byID[d]; ok {
				linked[i] = true
				linked[j] = true
			}
		}
	}
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := make([]int8, len(recs))
	best := make([]int64, len(recs))  // heaviest chain ending at i (inclusive)
	bestDep := make([]int, len(recs)) // predecessor index on that chain, -1 = none
	var visit func(i int) int64
	visit = func(i int) int64 {
		if state[i] == done {
			return best[i]
		}
		if state[i] == visiting {
			return 0 // cycle: ignore the closing edge
		}
		state[i] = visiting
		bestDep[i] = -1
		var heaviest int64
		for _, d := range recs[i].Deps {
			j, ok := byID[d]
			// Skipping nodes still on the DFS stack drops exactly the
			// cycle-closing edges, so bestDep links only into completed
			// subtrees and the path reconstruction below cannot loop.
			if !ok || j == i || state[j] == visiting {
				continue
			}
			if w := visit(j); w > heaviest || (w == heaviest && bestDep[i] < 0) {
				heaviest = w
				bestDep[i] = j
			}
		}
		best[i] = heaviest + recs[i].DurNs
		state[i] = done
		return best[i]
	}
	var cpEnd = -1
	var cpNs, totalLinked int64
	for i := range recs {
		if !linked[i] {
			continue
		}
		totalLinked += recs[i].DurNs
		if w := visit(i); w > cpNs {
			cpNs = w
			cpEnd = i
		}
	}
	if cpEnd < 0 {
		return 0, nil, 0
	}
	var rev []PathStep
	for i := cpEnd; i >= 0; i = bestDep[i] {
		rev = append(rev, PathStep{Name: recs[i].Name, ID: recs[i].ID, DurNs: recs[i].DurNs})
	}
	path := make([]PathStep, len(rev))
	for i, s := range rev {
		path[len(rev)-1-i] = s
	}
	frac := 0.0
	if totalLinked > 0 {
		frac = float64(cpNs) / float64(totalLinked)
	}
	return cpNs, path, frac
}
