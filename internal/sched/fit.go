package sched

import "math"

// The scaling-law fits: measured speedup points S(j) from the sweep are
// fit to Amdahl's law, which explains shortfall purely as a serial
// fraction, and to Gunther's Universal Scalability Law, which separates
// contention (σ, queue-for-shared-resource, Amdahl-like) from coherency
// (κ, pairwise-exchange cost that makes throughput *retrograde* at high
// j). Comparing the two fits tells you whether adding workers stopped
// helping because of leftover serial work or because of coordination
// cost — exactly the pool-overhead vs compute split the event engine's
// 13x-shorter tasks made matter.
//
// Both fits minimise squared error on a deterministic coarse-to-fine grid
// (no RNG, no external solver): the parameter spaces are tiny ([0,1] for
// s and σ, [0,1] for κ) and the objective is cheap, so three refinement
// rounds give ~1e-6 resolution.

// SpeedupPoint is one measured configuration of the sweep.
type SpeedupPoint struct {
	Jobs    int     `json:"jobs"`
	Speedup float64 `json:"speedup"`
}

// AmdahlSpeedup evaluates Amdahl's law S(j) = 1 / (s + (1-s)/j) for
// serial fraction s.
func AmdahlSpeedup(s float64, j int) float64 {
	if j <= 0 {
		return 0
	}
	den := s + (1-s)/float64(j)
	if den <= 0 {
		return math.Inf(1)
	}
	return 1 / den
}

// USLSpeedup evaluates the Universal Scalability Law
// S(j) = j / (1 + σ(j-1) + κ·j(j-1)).
func USLSpeedup(sigma, kappa float64, j int) float64 {
	if j <= 0 {
		return 0
	}
	fj := float64(j)
	den := 1 + sigma*(fj-1) + kappa*fj*(fj-1)
	if den <= 0 {
		return math.Inf(1)
	}
	return fj / den
}

// AmdahlFit is a fitted Amdahl model.
type AmdahlFit struct {
	SerialFrac float64 `json:"serial_fraction"`
	RMSE       float64 `json:"rmse"`
}

// USLFit is a fitted Universal Scalability Law model.
type USLFit struct {
	Sigma float64 `json:"sigma"` // contention (serial-fraction-like)
	Kappa float64 `json:"kappa"` // coherency (crosstalk; retrograde scaling)
	RMSE  float64 `json:"rmse"`
}

// rmse returns the root-mean-square error of model over the points.
func rmse(points []SpeedupPoint, model func(j int) float64) float64 {
	if len(points) == 0 {
		return 0
	}
	var sum float64
	for _, p := range points {
		d := model(p.Jobs) - p.Speedup
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(points)))
}

// gridMin1 minimises f over [lo, hi] by three rounds of 1-D grid
// refinement (deterministic; ~ (hi-lo)·1e-6 resolution).
func gridMin1(lo, hi float64, f func(x float64) float64) float64 {
	const steps = 200
	best, bestV := lo, math.Inf(1)
	for round := 0; round < 3; round++ {
		step := (hi - lo) / steps
		for i := 0; i <= steps; i++ {
			x := lo + float64(i)*step
			if v := f(x); v < bestV {
				bestV, best = v, x
			}
		}
		lo, hi = math.Max(lo, best-step), math.Min(hi, best+step)
	}
	return best
}

// FitAmdahl fits the serial fraction s ∈ [0,1] to the measured speedups
// by least squares.
func FitAmdahl(points []SpeedupPoint) AmdahlFit {
	obj := func(s float64) float64 {
		return rmse(points, func(j int) float64 { return AmdahlSpeedup(s, j) })
	}
	s := gridMin1(0, 1, obj)
	return AmdahlFit{SerialFrac: s, RMSE: obj(s)}
}

// gridMin2 minimises f over [lo1,hi1]×[lo2,hi2] by four rounds of 2-D
// grid refinement. The full-grid coarse pass matters: σ and κ are
// strongly correlated (both multiply (j-1) terms), so alternating 1-D
// sweeps stall on the diagonal ridge of the objective.
func gridMin2(lo1, hi1, lo2, hi2 float64, f func(x, y float64) float64) (float64, float64) {
	const steps = 100
	best1, best2, bestV := lo1, lo2, math.Inf(1)
	for round := 0; round < 4; round++ {
		s1 := (hi1 - lo1) / steps
		s2 := (hi2 - lo2) / steps
		for i := 0; i <= steps; i++ {
			for j := 0; j <= steps; j++ {
				x, y := lo1+float64(i)*s1, lo2+float64(j)*s2
				if v := f(x, y); v < bestV {
					bestV, best1, best2 = v, x, y
				}
			}
		}
		lo1, hi1 = math.Max(lo1, best1-s1), math.Min(hi1, best1+s1)
		lo2, hi2 = math.Max(lo2, best2-s2), math.Min(hi2, best2+s2)
	}
	return best1, best2
}

// FitUSL fits σ, κ ∈ [0,1] to the measured speedups by least squares on
// a refined 2-D grid.
func FitUSL(points []SpeedupPoint) USLFit {
	obj := func(sigma, kappa float64) float64 {
		return rmse(points, func(j int) float64 { return USLSpeedup(sigma, kappa, j) })
	}
	sigma, kappa := gridMin2(0, 1, 0, 1, obj)
	return USLFit{Sigma: sigma, Kappa: kappa, RMSE: obj(sigma, kappa)}
}
