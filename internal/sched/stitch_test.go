package sched

import (
	"testing"

	"synts/internal/obs"
)

// hx is shorthand for the 16-hex ID form test spans use.
func hx(v uint64) string { return obs.TraceHex(v) }

// onPathSolves counts service.solve spans marked on the critical path.
func onPathSolves(t *TraceTree) int {
	n := 0
	var rec func(nd *TraceNode)
	rec = func(nd *TraceNode) {
		if nd.OnPath && nd.Span.Name == obs.TSServiceSolve {
			n++
		}
		for _, c := range nd.Children {
			rec(c)
		}
	}
	rec(t.Root)
	return n
}

// Satellite scenario 1: a hedged request whose losing lane was cancelled.
// Exactly one solve span sits on the critical path, the cancelled lane is
// off-path, and the lanes' in-flight intersection is attributed as hedge
// overlap. The daemon's raw clock is wildly offset to prove the stitcher
// anchors child processes instead of trusting their epochs.
func TestStitchHedgedLoserCancelled(t *testing.T) {
	spans := []obs.TraceSpan{
		{Trace: hx(1), Span: hx(1), Name: obs.TSClientRequest, Kind: obs.HopRoot, Proc: "lg", Detail: "ok", StartNs: 0, DurNs: 1000},
		{Trace: hx(1), Span: hx(10), Parent: hx(1), Name: obs.TSClientAttempt, Kind: obs.HopFirst, Proc: "lg", Lane: 0, Detail: "ok", StartNs: 10, DurNs: 980},
		{Trace: hx(1), Span: hx(11), Parent: hx(1), Name: obs.TSClientAttempt, Kind: obs.HopHedge, Proc: "lg", Lane: 1, Detail: "cancelled", StartNs: 500, DurNs: 300},
		{Trace: hx(1), Span: hx(20), Parent: hx(10), Name: obs.TSServiceRequest, Kind: obs.HopFirst, Proc: "d1", Detail: "ok", StartNs: 5_000_000, DurNs: 900},
		{Trace: hx(1), Span: hx(21), Parent: hx(20), Name: obs.TSServiceQueue, Kind: obs.HopQueue, Proc: "d1", StartNs: 5_000_010, DurNs: 50},
		{Trace: hx(1), Span: hx(22), Parent: hx(20), Name: obs.TSServiceSolve, Kind: obs.HopSolve, Proc: "d1", StartNs: 5_000_060, DurNs: 800},
	}
	res := Stitch(spans)
	if res.Orphans != 0 || len(res.Trees) != 1 {
		t.Fatalf("trees=%d orphans=%d, want 1/0", len(res.Trees), res.Orphans)
	}
	tree := res.Trees[0]
	if got := onPathSolves(tree); got != 1 {
		t.Fatalf("%d solve spans on the critical path, want exactly 1", got)
	}
	var loser *TraceNode
	for _, c := range tree.Root.Children {
		if c.Span.Lane == 1 {
			loser = c
		}
	}
	if loser == nil || loser.OnPath {
		t.Fatal("cancelled hedge lane missing or on the critical path")
	}
	c := tree.Comp
	if c.HedgeOverlapNs != 300 {
		t.Errorf("hedge overlap %d, want 300 (lanes [10,990] vs [500,800])", c.HedgeOverlapNs)
	}
	if c.SolveNs != 800 || c.DaemonQueueNs != 100 {
		t.Errorf("solve=%d daemon-queue=%d, want 800/100", c.SolveNs, c.DaemonQueueNs)
	}
	if c.NetworkNs != 80 {
		t.Errorf("network %d, want 80 (attempt 980 minus remote 900)", c.NetworkNs)
	}
	if c.ClientQueueNs != 20 {
		t.Errorf("client-queue %d, want 20 (total 1000 minus winning wall 980)", c.ClientQueueNs)
	}
	if tree.FailoverOnPath || tree.BreakerSkipOnPath {
		t.Error("healthy hedge flagged failover/breaker")
	}
	// Skew anchoring: the daemon subtree must land inside the attempt's
	// envelope on the normalized timeline despite its 5ms raw offset.
	req := tree.Root.Children[0].Children[0]
	if req.StartNs < 10 || req.EndNs > 990 {
		t.Errorf("anchored service.request [%d,%d] escapes attempt [10,990]", req.StartNs, req.EndNs)
	}
	if q := req.Children[0]; q.StartNs != req.StartNs+10 {
		t.Errorf("same-proc child start %d, want parent+10 = %d (offset must be shared)", q.StartNs, req.StartNs+10)
	}
}

// Satellite scenario 2: retried-then-OK on one backend. The backoff sleep
// is attributed as retry-wait exactly once, the failed first attempt sits
// on the critical path (it delayed the answer), and the solve is not
// double-counted.
func TestStitchRetriedThenOK(t *testing.T) {
	spans := []obs.TraceSpan{
		{Trace: hx(2), Span: hx(2), Name: obs.TSClientRequest, Kind: obs.HopRoot, Proc: "lg", Detail: "ok", StartNs: 0, DurNs: 1000},
		{Trace: hx(2), Span: hx(10), Parent: hx(2), Name: obs.TSClientAttempt, Kind: obs.HopFirst, Proc: "lg", Lane: 0, Detail: "status:500", StartNs: 10, DurNs: 200},
		{Trace: hx(2), Span: hx(11), Parent: hx(2), Name: obs.TSClientBackoff, Kind: obs.HopWait, Proc: "lg", Lane: 0, StartNs: 210, DurNs: 100},
		{Trace: hx(2), Span: hx(12), Parent: hx(2), Name: obs.TSClientAttempt, Kind: obs.HopRetry, Proc: "lg", Lane: 0, Detail: "ok", StartNs: 310, DurNs: 600},
		{Trace: hx(2), Span: hx(20), Parent: hx(12), Name: obs.TSServiceRequest, Kind: obs.HopRetry, Proc: "d1", Detail: "ok", StartNs: 40, DurNs: 550},
		{Trace: hx(2), Span: hx(22), Parent: hx(20), Name: obs.TSServiceSolve, Kind: obs.HopSolve, Proc: "d1", StartNs: 60, DurNs: 500},
	}
	res := Stitch(spans)
	if res.Orphans != 0 || len(res.Trees) != 1 {
		t.Fatalf("trees=%d orphans=%d, want 1/0", len(res.Trees), res.Orphans)
	}
	tree := res.Trees[0]
	c := tree.Comp
	if c.RetryWaitNs != 100 {
		t.Errorf("retry-wait %d, want 100 (one backoff, counted once)", c.RetryWaitNs)
	}
	if got := onPathSolves(tree); got != 1 {
		t.Fatalf("%d solve spans on the critical path, want 1", got)
	}
	if c.SolveNs != 500 {
		t.Errorf("solve %d, want 500 (not double-counted)", c.SolveNs)
	}
	for _, ch := range tree.Root.Children {
		if !ch.OnPath {
			t.Errorf("%s (%s) off the critical path; every serial step of the winning lane belongs on it", ch.Span.Name, ch.Span.Kind)
		}
	}
	if tree.FailoverOnPath {
		t.Error("same-backend retry flagged as failover")
	}
	if c.ClientQueueNs != 100 {
		t.Errorf("client-queue %d, want 100 (1000 − 100 wait − 800 attempts)", c.ClientQueueNs)
	}
}

// Satellite scenario 3: a router ring walk that skips a breaker-open
// backend, burns an attempt on a dead one, and fails over. The stitched
// tree spans two backends, the failover hop and the skip are on the
// critical path, and router time is the route span net of daemon time.
func TestStitchFailoverAcrossBackends(t *testing.T) {
	spans := []obs.TraceSpan{
		{Trace: hx(3), Span: hx(3), Name: obs.TSClientRequest, Kind: obs.HopRoot, Proc: "lg", Detail: "ok", StartNs: 0, DurNs: 2000},
		{Trace: hx(3), Span: hx(10), Parent: hx(3), Name: obs.TSClientAttempt, Kind: obs.HopFirst, Proc: "lg", Lane: 0, Detail: "ok", StartNs: 10, DurNs: 1900},
		{Trace: hx(3), Span: hx(30), Parent: hx(10), Name: obs.TSRouteRequest, Kind: obs.HopFirst, Proc: "rt", Detail: "ok", StartNs: 100, DurNs: 1800},
		{Trace: hx(3), Span: hx(31), Parent: hx(30), Name: obs.TSRouteHop, Kind: obs.HopSkip, Proc: "rt", Backend: "http://b0", Detail: "breaker-open", StartNs: 105, DurNs: 0},
		{Trace: hx(3), Span: hx(32), Parent: hx(30), Name: obs.TSRouteHop, Kind: obs.HopFirst, Proc: "rt", Backend: "http://b1", Detail: "backend-down", StartNs: 110, DurNs: 300},
		{Trace: hx(3), Span: hx(33), Parent: hx(30), Name: obs.TSRouteHop, Kind: obs.HopFailover, Proc: "rt", Backend: "http://b2", Detail: "ok", StartNs: 420, DurNs: 1400},
		{Trace: hx(3), Span: hx(40), Parent: hx(33), Name: obs.TSServiceRequest, Kind: obs.HopFailover, Proc: "d2", Detail: "ok", StartNs: 7, DurNs: 1300},
		{Trace: hx(3), Span: hx(41), Parent: hx(40), Name: obs.TSServiceSolve, Kind: obs.HopSolve, Proc: "d2", StartNs: 20, DurNs: 1000},
	}
	res := Stitch(spans)
	if res.Orphans != 0 || len(res.Trees) != 1 {
		t.Fatalf("trees=%d orphans=%d, want 1/0", len(res.Trees), res.Orphans)
	}
	tree := res.Trees[0]
	if !tree.FailoverOnPath {
		t.Error("failover hop on the serving walk not flagged")
	}
	if !tree.BreakerSkipOnPath {
		t.Error("breaker-open skip on the serving walk not flagged")
	}
	backends := map[string]bool{}
	var rec func(n *TraceNode)
	rec = func(n *TraceNode) {
		if n.OnPath && n.Span.Backend != "" {
			backends[n.Span.Backend] = true
		}
		for _, c := range n.Children {
			rec(c)
		}
	}
	rec(tree.Root)
	if len(backends) < 2 {
		t.Errorf("critical path touches backends %v, want at least the dead and the serving one", backends)
	}
	c := tree.Comp
	if c.RouterNs != 500 {
		t.Errorf("router %d, want 500 (route 1800 minus daemon 1300)", c.RouterNs)
	}
	if c.SolveNs != 1000 || c.DaemonQueueNs != 300 {
		t.Errorf("solve=%d daemon-queue=%d, want 1000/300", c.SolveNs, c.DaemonQueueNs)
	}

	rep := BuildTraceReport(res)
	if rep.FailoverTraces != 1 || rep.BreakerSkipTraces != 1 {
		t.Errorf("report failover=%d breaker-skip=%d, want 1/1", rep.FailoverTraces, rep.BreakerSkipTraces)
	}
	if rep.DominantP99 != "solve" {
		t.Errorf("dominant p99 contributor %q, want solve", rep.DominantP99)
	}
	if rep.P99.Trace != hx(3) {
		t.Errorf("p99 trace %q, want %q", rep.P99.Trace, hx(3))
	}
}

// Orphan accounting: a span with a missing parent and a trace with no
// root both surface as orphans instead of vanishing.
func TestStitchOrphans(t *testing.T) {
	spans := []obs.TraceSpan{
		// Trace 4: complete root + one dangling child.
		{Trace: hx(4), Span: hx(4), Name: obs.TSClientRequest, Kind: obs.HopRoot, Proc: "lg", StartNs: 0, DurNs: 10},
		{Trace: hx(4), Span: hx(10), Parent: hx(99), Name: obs.TSClientAttempt, Kind: obs.HopFirst, Proc: "lg", StartNs: 0, DurNs: 5},
		// Trace 5: no client.request root at all.
		{Trace: hx(5), Span: hx(20), Parent: hx(5), Name: obs.TSServiceRequest, Kind: obs.HopFirst, Proc: "d1", StartNs: 0, DurNs: 5},
	}
	res := Stitch(spans)
	if len(res.Trees) != 1 {
		t.Fatalf("%d trees, want 1 (the rootless trace cannot stitch)", len(res.Trees))
	}
	if res.Orphans != 2 {
		t.Fatalf("orphans = %d, want 2 (dangling child + rootless span)", res.Orphans)
	}
}
