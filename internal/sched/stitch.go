package sched

import (
	"math"
	"sort"
	"strings"

	"synts/internal/obs"
)

// stitch.go merges per-process synts-trace/v1 span artifacts (loadgen,
// router, daemons — each on its own monotonic clock) into fleet-wide trace
// trees, extending the critical-path analysis in critpath.go across
// process boundaries. Span IDs are content-derived (obs.TraceDerive), so
// the parent/child edges line up across artifacts without any runtime
// coordination; only the clocks disagree, and those are reconciled by
// anchoring each process's first span inside its parent's send/receive
// envelope (the child cannot have started before the parent sent the
// request nor ended after the parent saw the response — the classic
// messaging bound on distributed clock skew).

// TraceNode is one span placed on the stitched, trace-local timeline
// (root starts at 0).
type TraceNode struct {
	Span     obs.TraceSpan
	StartNs  int64 // normalized trace timeline
	EndNs    int64
	Children []*TraceNode
	// OnPath marks the critical path: the serial chain of spans that
	// determined when the root completed (winning lane only; a cancelled
	// hedge lane is off-path by construction).
	OnPath bool
}

// TraceComponents decomposes one stitched trace's end-to-end time into
// the same per-hop buckets the loadgen report uses, but derived purely
// from spans — so comparing the two is a genuine cross-artifact
// reconciliation, not the same numbers copied twice.
type TraceComponents struct {
	TotalNs        int64 `json:"total_ns"`
	ClientQueueNs  int64 `json:"client_queue_ns"`
	RetryWaitNs    int64 `json:"retry_wait_ns"`
	NetworkNs      int64 `json:"network_ns"`
	RouterNs       int64 `json:"router_ns"`
	DaemonQueueNs  int64 `json:"daemon_queue_ns"`
	SolveNs        int64 `json:"solve_ns"`
	HedgeOverlapNs int64 `json:"hedge_overlap_ns"` // parallel; outside the serial sum
}

// TraceTree is one logical request reassembled across processes.
type TraceTree struct {
	Trace string
	Root  *TraceNode
	Spans int // spans reachable from the root
	Comp  TraceComponents
	// FailoverOnPath reports a failover hop (client backend switch or
	// router ring-walk replay) on the critical path: this request's tail
	// latency is attributable to a recovery, the fleet analogue of the
	// paper's detect-and-replay cost.
	FailoverOnPath bool
	// BreakerSkipOnPath reports that the serving ring walk stepped over a
	// breaker-open backend.
	BreakerSkipOnPath bool
}

// StitchResult is the outcome of merging span artifacts.
type StitchResult struct {
	Trees []*TraceTree // sorted by trace ID
	Spans int          // spans in
	// Orphans counts spans not reachable from any root: a missing parent,
	// a duplicate span ID, or a trace with no client.request root. Zero on
	// a complete artifact set; obscheck -trace fails otherwise.
	Orphans int
}

// Stitch merges spans (typically the concatenation of several processes'
// artifacts) into per-trace trees.
func Stitch(spans []obs.TraceSpan) *StitchResult {
	res := &StitchResult{Spans: len(spans)}
	byTrace := map[string][]obs.TraceSpan{}
	for _, sp := range spans {
		byTrace[sp.Trace] = append(byTrace[sp.Trace], sp)
	}
	traces := make([]string, 0, len(byTrace))
	for t := range byTrace {
		traces = append(traces, t)
	}
	sort.Strings(traces)
	for _, t := range traces {
		group := byTrace[t]
		tree, orphans := stitchOne(t, group)
		res.Orphans += orphans
		if tree != nil {
			res.Trees = append(res.Trees, tree)
		}
	}
	return res
}

// stitchOne assembles one trace's spans into a tree, returning the tree
// (nil when the trace has no root) and its orphan count.
func stitchOne(trace string, group []obs.TraceSpan) (*TraceTree, int) {
	nodes := make(map[string]*TraceNode, len(group))
	orphans := 0
	var root *TraceNode
	for _, sp := range group {
		if _, dup := nodes[sp.Span]; dup {
			orphans++ // duplicate span ID: keep the first, orphan the rest
			continue
		}
		n := &TraceNode{Span: sp}
		nodes[sp.Span] = n
		if sp.Name == obs.TSClientRequest && root == nil {
			root = n
		}
	}
	if root == nil {
		return nil, orphans + len(nodes)
	}
	for _, n := range nodes {
		if n == root {
			continue
		}
		if p := nodes[n.Span.Parent]; p != nil && p != n {
			p.Children = append(p.Children, n)
		}
	}
	for _, n := range nodes {
		sort.Slice(n.Children, func(i, j int) bool {
			a, b := n.Children[i].Span, n.Children[j].Span
			if a.StartNs != b.StartNs {
				return a.StartNs < b.StartNs
			}
			return a.Span < b.Span
		})
	}

	// Normalize clocks: the root's process defines t=0; each other
	// process is anchored the first time the walk crosses into it, by
	// centering that boundary child in the parent's envelope — the skew
	// can place the child anywhere inside [parent start, parent end], and
	// the midpoint splits the residual (network) time symmetrically.
	offsets := map[string]int64{root.Span.Proc: -root.Span.StartNs}
	root.StartNs = 0
	root.EndNs = root.Span.DurNs
	reachable := 1
	var walk func(n, p *TraceNode)
	walk = func(n, p *TraceNode) {
		reachable++
		if off, ok := offsets[n.Span.Proc]; ok {
			n.StartNs = n.Span.StartNs + off
		} else {
			slack := (p.EndNs - p.StartNs) - n.Span.DurNs
			if slack < 0 {
				slack = 0
			}
			n.StartNs = p.StartNs + slack/2
			offsets[n.Span.Proc] = n.StartNs - n.Span.StartNs
		}
		if n.StartNs < p.StartNs {
			n.StartNs = p.StartNs
		}
		n.EndNs = n.StartNs + n.Span.DurNs
		for _, c := range n.Children {
			walk(c, n)
		}
	}
	for _, c := range root.Children {
		walk(c, root)
	}
	orphans += len(nodes) - reachable

	tree := &TraceTree{Trace: trace, Root: root, Spans: reachable}
	markCriticalPath(tree)
	tree.Comp = components(tree)
	return tree, orphans
}

// markCriticalPath marks the serial chain that determined the root's end
// time: the winning client lane (every attempt and backoff on it — serial
// by construction) and, below each attempt, the full downstream subtree
// (ring-walk hops are serial, queue precedes solve). A losing hedge
// lane's subtree stays off-path.
func markCriticalPath(t *TraceTree) {
	t.Root.OnPath = true
	winLane := -1
	var latest *TraceNode
	for _, c := range t.Root.Children {
		if c.Span.Name != obs.TSClientAttempt {
			continue
		}
		d := c.Span.Detail
		if d == "ok" || strings.HasPrefix(d, "shed:") {
			winLane = c.Span.Lane
			if d == "ok" {
				break
			}
			continue
		}
		if d != "cancelled" && (latest == nil || c.EndNs > latest.EndNs) {
			latest = c
		}
	}
	if winLane < 0 {
		if latest != nil {
			winLane = latest.Span.Lane
		} else {
			winLane = 0
		}
	}
	var markAll func(n *TraceNode)
	markAll = func(n *TraceNode) {
		n.OnPath = true
		switch {
		case n.Span.Kind == obs.HopFailover:
			t.FailoverOnPath = true
		case n.Span.Kind == obs.HopSkip && n.Span.Detail == "breaker-open":
			t.BreakerSkipOnPath = true
		}
		for _, c := range n.Children {
			markAll(c)
		}
	}
	for _, c := range t.Root.Children {
		if c.Span.Lane == winLane {
			markAll(c)
		}
	}
}

// components derives the per-hop decomposition from the on-path spans,
// mirroring the timing-header identity the fleet client uses: solve is the
// shard worker time, daemon queue the rest of the daemon's handling,
// router the route time net of daemon time, network the attempt time net
// of remote time, retry-wait the backoff sleeps, client-queue the
// residue, and hedge-overlap the interval intersection of the two lanes.
func components(t *TraceTree) TraceComponents {
	c := TraceComponents{TotalNs: t.Root.Span.DurNs}
	var attemptsWall int64
	var visit func(n *TraceNode)
	visit = func(n *TraceNode) {
		if n.OnPath {
			switch n.Span.Name {
			case obs.TSClientAttempt:
				attemptsWall += n.Span.DurNs
				var remote int64
				for _, ch := range n.Children {
					remote += ch.Span.DurNs
				}
				if d := n.Span.DurNs - remote; d > 0 {
					c.NetworkNs += d
				}
			case obs.TSClientBackoff:
				c.RetryWaitNs += n.Span.DurNs
			case obs.TSRouteRequest:
				var served int64
				for _, hop := range n.Children {
					for _, sc := range hop.Children {
						if sc.Span.Name == obs.TSServiceRequest {
							served += sc.Span.DurNs
						}
					}
				}
				if d := n.Span.DurNs - served; d > 0 {
					c.RouterNs += d
				}
			case obs.TSServiceRequest:
				var solve int64
				for _, ch := range n.Children {
					if ch.Span.Name == obs.TSServiceSolve {
						solve += ch.Span.DurNs
					}
				}
				c.SolveNs += solve
				if d := n.Span.DurNs - solve; d > 0 {
					c.DaemonQueueNs += d
				}
			}
		}
		for _, ch := range n.Children {
			visit(ch)
		}
	}
	visit(t.Root)
	c.ClientQueueNs = c.TotalNs - c.RetryWaitNs - attemptsWall
	if c.ClientQueueNs < 0 {
		c.ClientQueueNs = 0
	}
	c.HedgeOverlapNs = laneOverlap(t.Root)
	return c
}

// laneOverlap is the intersection of the two client lanes' attempt
// envelopes: the time both lanes were in flight at once.
func laneOverlap(root *TraceNode) int64 {
	type iv struct {
		s, e int64
		set  bool
	}
	var lanes [2]iv
	for _, c := range root.Children {
		if c.Span.Name != obs.TSClientAttempt || c.Span.Lane > 1 {
			continue
		}
		l := &lanes[c.Span.Lane]
		if !l.set || c.StartNs < l.s {
			l.s = c.StartNs
		}
		if !l.set || c.EndNs > l.e {
			l.e = c.EndNs
		}
		l.set = true
	}
	if !lanes[0].set || !lanes[1].set {
		return 0
	}
	s, e := lanes[0].s, lanes[0].e
	if lanes[1].s > s {
		s = lanes[1].s
	}
	if lanes[1].e < e {
		e = lanes[1].e
	}
	if e > s {
		return e - s
	}
	return 0
}

// TraceQuantile is the decomposition of the trace sitting at one
// nearest-rank latency quantile.
type TraceQuantile struct {
	Trace string `json:"trace"`
	TraceComponents
}

// TraceReport aggregates a stitched run for `synts trace` and CI gates.
type TraceReport struct {
	Traces  int `json:"traces"`
	Spans   int `json:"spans"`
	Orphans int `json:"orphans"`

	// FailoverTraces counts traces whose critical path crossed a
	// failover; BreakerSkipTraces those whose serving walk stepped over an
	// open breaker. Both zero on a healthy run.
	FailoverTraces    int `json:"failover_traces"`
	BreakerSkipTraces int `json:"breaker_skip_traces"`

	P50 TraceQuantile `json:"p50"`
	P95 TraceQuantile `json:"p95"`
	P99 TraceQuantile `json:"p99"`

	// DominantP99 names the largest serial component of the p99 trace —
	// the single answer "what is my tail made of".
	DominantP99 string `json:"dominant_p99"`
}

// BuildTraceReport computes the aggregate view of a stitch.
func BuildTraceReport(res *StitchResult) *TraceReport {
	rep := &TraceReport{Traces: len(res.Trees), Spans: res.Spans, Orphans: res.Orphans}
	for _, t := range res.Trees {
		if t.FailoverOnPath {
			rep.FailoverTraces++
		}
		if t.BreakerSkipOnPath {
			rep.BreakerSkipTraces++
		}
	}
	if len(res.Trees) == 0 {
		return rep
	}
	byTotal := append([]*TraceTree(nil), res.Trees...)
	sort.Slice(byTotal, func(i, j int) bool {
		if byTotal[i].Comp.TotalNs != byTotal[j].Comp.TotalNs {
			return byTotal[i].Comp.TotalNs < byTotal[j].Comp.TotalNs
		}
		return byTotal[i].Trace < byTotal[j].Trace
	})
	pick := func(q float64) TraceQuantile {
		i := int(math.Ceil(q*float64(len(byTotal)))) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(byTotal) {
			i = len(byTotal) - 1
		}
		return TraceQuantile{Trace: byTotal[i].Trace, TraceComponents: byTotal[i].Comp}
	}
	rep.P50, rep.P95, rep.P99 = pick(0.50), pick(0.95), pick(0.99)
	rep.DominantP99 = dominant(rep.P99.TraceComponents)
	return rep
}

// dominant names the largest serial component (hedge overlap is parallel
// and excluded; ties resolve to the earliest in pipeline order).
func dominant(c TraceComponents) string {
	comps := []struct {
		name string
		v    int64
	}{
		{"client-queue", c.ClientQueueNs},
		{"retry-wait", c.RetryWaitNs},
		{"network", c.NetworkNs},
		{"router", c.RouterNs},
		{"daemon-queue", c.DaemonQueueNs},
		{"solve", c.SolveNs},
	}
	best := comps[0]
	for _, x := range comps[1:] {
		if x.v > best.v {
			best = x
		}
	}
	return best.name
}
